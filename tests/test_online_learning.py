"""Online-learning subsystem tests: store, config, hot-swap, replay, rollback.

What the serving loop's learning layer guarantees (issue 8):

* :class:`CheckpointStore` — monotonic versions, fingerprint-verified loads,
  an atomic ``latest.json`` the legacy ``load_latest`` still reads, bounded
  retention;
* :class:`ServingConfig` / :func:`build_server` — one construction story for
  every topology (threaded / asyncio / fleet), agent sourcing from a store;
* broker hot-swap — installs stage under a lock and apply between decision
  rounds: versions are strictly monotonic, per-session version sequences
  never decrease, and no session is dropped by a swap;
* :class:`ReplayBuffer` — deterministic segmenting and sampling at fixed
  seeds, bounded memory;
* the manager loop — lr=0 online serving is decision- and weight-identical
  to frozen serving, and an SLO regression on a freshly installed version
  triggers automatic rollback to the last good checkpoint under a *new*
  monotonic version;
* protocol v2 — ``hello`` negotiation keeps old clients working while new
  clients see ``policy_version`` on welcome and every action reply.
"""

import numpy as np
import pytest

from _helpers import make_decima_agent, make_tpch_env

from repro.core import (
    CheckpointStore,
    DecimaAgent,
    DecimaConfig,
    load_latest,
    parameter_fingerprint,
    save_agent,
)
from repro.core.checkpoints import agent_spec
from repro.learning import (
    ExperienceStep,
    OnlineLearningConfig,
    OnlineLearningManager,
    OnlineTrainerConfig,
    ReplayBuffer,
    RolloutGuard,
)
from repro.service import (
    DecisionRequest,
    PolicyClient,
    ServingConfig,
    SessionState,
    build_server,
    encode_observation,
    run_load,
)
from repro.service.batcher import CircuitBreaker, RequestBroker
from repro.simulator.environment import Action


def tiny_agent(seed=0, total_executors=6):
    return DecimaAgent(
        total_executors=total_executors,
        config=DecimaConfig(seed=seed, hidden_sizes=(16, 8), embedding_dim=4),
    )


def make_clusters(count, num_jobs=2, num_executors=6):
    """``count`` independent simulated clusters with their wire sessions."""
    clusters = []
    for index in range(count):
        env, observation = make_tpch_env(
            num_jobs=num_jobs, num_executors=num_executors, seed=index
        )
        session = SessionState(
            f"s{index}", num_executors=num_executors, seed=100 + index
        )
        clusters.append([env, observation, session])
    return clusters


def run_rounds(broker, clusters, max_rounds=60, on_round=None):
    """Round-robin every live cluster through ``broker.decide``.

    Returns ``(decisions, num_completed)`` where each decision is
    ``(session_id, policy_version)`` in dispatch order.
    """
    decisions = []
    for round_index in range(max_rounds):
        pending = [
            (i, cluster) for i, cluster in enumerate(clusters)
            if cluster[1] is not None
        ]
        if not pending:
            break
        requests = {
            i: DecisionRequest(
                session=cluster[2],
                observation=cluster[2].observation_from_snapshot(
                    encode_observation(cluster[1])
                ),
            )
            for i, cluster in pending
        }
        results = broker.decide([requests[i] for i, _ in pending])
        for (i, cluster), result in zip(pending, results):
            decisions.append((cluster[2].session_id, result.policy_version))
            encoded = requests[i].session.encode_action(result.action)
            if encoded["noop"]:
                action = None
            else:
                job = next(
                    j for j in cluster[1].job_dags if j.job_id == encoded["job_id"]
                )
                node = next(
                    n for n in job.nodes if n.node_id == encoded["node_id"]
                )
                action = Action(
                    node=node, parallelism_limit=encoded["parallelism_limit"]
                )
            observation, _, done = cluster[0].step(action)
            cluster[1] = None if done else observation
        if on_round is not None:
            on_round(round_index)
    return decisions, sum(1 for c in clusters if c[1] is None)


# ---------------------------------------------------------------- checkpoints
class TestCheckpointStore:
    def test_versions_are_monotonic_and_pointer_tracks_latest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.latest_version() is None
        infos = [store.save(tiny_agent(seed=s)) for s in range(3)]
        assert [info.version for info in infos] == [1, 2, 3]
        assert store.versions() == [1, 2, 3]
        assert store.latest_version() == 3
        assert store.info().version == 3
        # The pointer stays readable by the legacy load_latest().
        legacy = load_latest(tmp_path)
        assert parameter_fingerprint(legacy) == infos[-1].fingerprint

    def test_load_specific_version(self, tmp_path):
        store = CheckpointStore(tmp_path)
        fingerprints = [store.save(tiny_agent(seed=s)).fingerprint for s in range(3)]
        assert parameter_fingerprint(store.load(2)) == fingerprints[1]
        assert parameter_fingerprint(store.load()) == fingerprints[2]
        state = store.load_state(1)
        rebuilt = tiny_agent(seed=9)
        rebuilt.load_state_dict(state)
        assert parameter_fingerprint(rebuilt) == fingerprints[0]

    def test_missing_versions_fail_loudly(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(FileNotFoundError, match="empty"):
            store.load()
        store.save(tiny_agent())
        with pytest.raises(FileNotFoundError, match="version 42 not found"):
            store.load(42)

    def test_swapped_checkpoint_behind_pointer_is_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.save(tiny_agent(seed=0))
        # Overwrite the checkpoint file with a different (self-consistent)
        # agent without moving the pointer: the store must refuse to serve it.
        save_agent(tiny_agent(seed=7), info.path, update_latest=False)
        with pytest.raises(ValueError, match="fingerprint"):
            store.load()

    def test_retention_garbage_collects_old_versions(self, tmp_path):
        store = CheckpointStore(tmp_path, retain=2)
        for seed in range(4):
            store.save(tiny_agent(seed=seed))
        assert store.versions() == [3, 4]
        # The pointer still names a live file.
        assert parameter_fingerprint(load_latest(tmp_path)) == store.info(4).fingerprint

    def test_retain_validation(self, tmp_path):
        with pytest.raises(ValueError, match="retain"):
            CheckpointStore(tmp_path, retain=0)


# ------------------------------------------------------------- serving config
class TestServingConfigFactory:
    def test_transport_selection(self):
        from repro.service import AsyncPolicyServer, PolicyServer, ServingFleet

        agent = tiny_agent()
        assert isinstance(
            build_server(ServingConfig(transport="threaded"), agent=agent),
            PolicyServer,
        )
        assert isinstance(
            build_server(ServingConfig(transport="asyncio"), agent=agent),
            AsyncPolicyServer,
        )
        fleet = build_server(ServingConfig(num_shards=2), agent=agent)
        assert isinstance(fleet, ServingFleet)
        assert fleet.num_shards == 2

    def test_config_validation(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ServingConfig(transport="carrier_pigeon")
        with pytest.raises(ValueError, match="num_shards"):
            ServingConfig(num_shards=0)

    def test_decision_path_kwargs_reach_the_server(self):
        config = ServingConfig(slo_ms=25.0, fallback="sjf_cp", batched=False, greedy=False)
        server = build_server(config, agent=tiny_agent())
        assert server.default_fallback == "sjf_cp"
        assert server.broker.batched is False
        assert server.broker.greedy is False
        assert server.broker.breaker is not None

    def test_agent_loaded_from_checkpoint_store(self, tmp_path):
        info = CheckpointStore(tmp_path).save(tiny_agent(seed=5))
        server = build_server(ServingConfig(checkpoint_dir=str(tmp_path)))
        assert parameter_fingerprint(server.agent) == info.fingerprint

    def test_agent_required_without_store(self):
        with pytest.raises(ValueError, match="agent or set checkpoint_dir"):
            build_server(ServingConfig())

    def test_kernel_backend_override_rebuilds_agent(self):
        agent = tiny_agent()
        config = ServingConfig(kernel_backend="numba")
        resolved = config.resolve_agent(agent)
        assert resolved is not agent
        assert resolved.config.kernel_backend == "numba"
        # Same weights, different kernels: behaviour-identical by the
        # kernel_vs_numpy differential pair.
        assert parameter_fingerprint(resolved) == parameter_fingerprint(agent)
        assert agent.config.kernel_backend != "numba"  # caller's agent untouched


# ------------------------------------------------------------ broker hot-swap
class TestBrokerHotSwap:
    def test_install_applies_between_decision_rounds(self):
        broker = RequestBroker(tiny_agent(seed=0))
        new_weights = tiny_agent(seed=1)
        clusters = make_clusters(2)
        first, _ = run_rounds(broker, clusters, max_rounds=1)
        assert {version for _, version in first} == {1}
        broker.install(new_weights.state_dict(), 2)
        assert broker.policy_version == 1  # staged, not yet applied
        assert broker.pending_policy_version == 2
        more, _ = run_rounds(broker, clusters, max_rounds=1)
        assert {version for _, version in more} == {2}
        assert broker.policy_version == 2
        assert broker.pending_policy_version is None
        assert broker.num_policy_swaps == 1
        assert parameter_fingerprint(broker.agent) == parameter_fingerprint(new_weights)
        stats = broker.stats()
        assert stats["policy_version"] == 2
        assert stats["num_policy_swaps"] == 1

    def test_install_rejects_non_monotonic_versions(self):
        broker = RequestBroker(tiny_agent())
        state = tiny_agent(seed=1).state_dict()
        with pytest.raises(ValueError, match="monotonic"):
            broker.install(state, 1)
        broker.install(state, 2)
        # Even a *staged* version blocks re-use of its number.
        with pytest.raises(ValueError, match="monotonic"):
            broker.install(state, 2)

    def test_hot_swap_under_concurrent_sessions_drops_nothing(self):
        """Swapping mid-stream: every session finishes its episode and every
        session's observed version sequence is non-decreasing."""
        broker = RequestBroker(tiny_agent(seed=0))
        clusters = make_clusters(4, num_jobs=2)
        versions = iter([2, 3])

        def swap_mid_stream(round_index):
            if round_index in (2, 5):
                broker.install(
                    tiny_agent(seed=round_index).state_dict(), next(versions)
                )

        decisions, completed = run_rounds(
            broker, clusters, max_rounds=80, on_round=swap_mid_stream
        )
        assert completed == 4  # no session dropped by the swaps
        assert broker.num_policy_swaps == 2
        per_session: dict = {}
        for session_id, version in decisions:
            per_session.setdefault(session_id, []).append(version)
        assert len(per_session) == 4
        for sequence in per_session.values():
            assert sequence == sorted(sequence)  # monotonic per session
        assert {seq[-1] for seq in per_session.values()} == {3}
        # The audit trail reaches the session stats too.
        for cluster in clusters:
            assert cluster[2].stats()["last_policy_version"] == 3


# -------------------------------------------------------------- replay buffer
def synthetic_steps(session_id, count, start=0):
    return [
        ExperienceStep(
            session_id=session_id,
            wall_time=float(10 * (start + k)),
            num_jobs_in_system=2,
            snapshot={},
            action={"job_id": 0, "node_id": 0, "limit": 1},
            source="policy",
            policy_version=1,
        )
        for k in range(count)
    ]


class TestReplayBuffer:
    def test_segments_cut_per_session_in_arrival_order(self):
        buffer = ReplayBuffer(segment_steps=3, max_episodes=8)
        cut = buffer.add_steps(
            synthetic_steps("a", 4) + synthetic_steps("b", 3)
        )
        assert cut == 2  # one full segment each; "a" keeps 1 pending
        assert len(buffer) == 2
        assert buffer.num_pending_steps() == 1
        cut = buffer.add_steps(synthetic_steps("a", 2, start=4))
        assert cut == 1  # the pending step completes a's second segment
        episodes = buffer.sample(3, np.random.default_rng(0))
        assert [e.session_id for e in episodes] == ["a", "b", "a"]
        for episode in episodes:
            assert len(episode.steps) == 3

    def test_sampling_is_deterministic_at_fixed_seed(self):
        def build():
            buffer = ReplayBuffer(segment_steps=2, max_episodes=64)
            for session in "abcdef":
                buffer.add_steps(synthetic_steps(session, 6))
            return buffer

        picks_a = build().sample(4, np.random.default_rng(123))
        picks_b = build().sample(4, np.random.default_rng(123))
        key = lambda eps: [(e.session_id, e.steps[0].wall_time) for e in eps]
        assert key(picks_a) == key(picks_b)
        # And a different seed is allowed to (and here does) pick differently.
        picks_c = build().sample(4, np.random.default_rng(7))
        assert key(picks_a) != key(picks_c)

    def test_bounded_memory(self):
        buffer = ReplayBuffer(
            segment_steps=2, max_episodes=3, max_pending_per_session=4
        )
        for start in range(0, 10, 2):
            buffer.add_steps(synthetic_steps("a", 2, start=start))
        assert buffer.num_episodes_cut == 5
        assert len(buffer) == 3  # deque bounded, oldest episodes evicted
        # A single oversized batch is capped by the pending bound before
        # segments are cut, so one call can never blow up memory either.
        buffer.add_steps(synthetic_steps("b", 40))
        assert buffer.num_pending_steps() <= 4

    def test_validation(self):
        with pytest.raises(ValueError, match="segment_steps"):
            ReplayBuffer(segment_steps=1)
        with pytest.raises(ValueError, match="max_pending_per_session"):
            ReplayBuffer(segment_steps=8, max_pending_per_session=4)


# ------------------------------------------------------------- guard/rollback
class TestRolloutGuard:
    def test_verdict_lifecycle(self):
        guard = RolloutGuard(min_decisions=10, max_new_breaker_opens=0)
        assert not guard.armed
        assert guard.verdict({"num_decisions": 0, "num_breaker_opens": 0}) == "pass"
        guard.arm({"num_decisions": 100, "num_breaker_opens": 2})
        assert guard.verdict({"num_decisions": 105, "num_breaker_opens": 2}) == "pending"
        assert guard.verdict({"num_decisions": 110, "num_breaker_opens": 3}) == "fail"
        assert guard.verdict({"num_decisions": 110, "num_breaker_opens": 2}) == "pass"
        guard.disarm()
        assert not guard.armed

    def test_validation(self):
        with pytest.raises(ValueError, match="min_decisions"):
            RolloutGuard(min_decisions=0)
        with pytest.raises(ValueError, match="max_new_breaker_opens"):
            RolloutGuard(max_new_breaker_opens=-1)


class TestManagerLoop:
    def manager_for(
        self, broker, store_dir, lr, guard_min=4, segment_steps=2,
        episodes_per_update=1,
    ):
        return OnlineLearningManager(
            broker,
            CheckpointStore(store_dir),
            OnlineLearningConfig(
                episodes_per_update=episodes_per_update,
                segment_steps=segment_steps,
                guard_min_decisions=guard_min,
                trainer_process=False,
                trainer=OnlineTrainerConfig(learning_rate=lr),
            ),
        )

    def test_lr0_loop_is_weight_and_decision_identical(self, tmp_path):
        frozen_decisions, _ = run_rounds(
            RequestBroker(tiny_agent(seed=0)), make_clusters(3), max_rounds=20
        )
        broker = RequestBroker(tiny_agent(seed=0))
        baseline = parameter_fingerprint(broker.agent)
        manager = self.manager_for(broker, tmp_path, lr=0.0, guard_min=10**9)
        with manager:
            online_decisions, _ = run_rounds(
                broker,
                make_clusters(3),
                max_rounds=20,
                on_round=lambda r: manager.maybe_update() if r % 3 == 2 else None,
            )
            assert manager.num_updates_applied >= 1
            assert manager.policy_version > 1
        # Same sessions, same answers — only the version stamp may differ.
        assert [s for s, _ in online_decisions] == [s for s, _ in frozen_decisions]
        assert parameter_fingerprint(broker.agent) == baseline
        # lr=0 Adam steps are bit-neutral, so every stored version is the
        # same weights.
        store = CheckpointStore(tmp_path)
        fingerprints = {store.info(v).fingerprint for v in store.versions()}
        assert fingerprints == {baseline}

    def test_slo_regression_triggers_automatic_rollback(self, tmp_path):
        broker = RequestBroker(
            tiny_agent(seed=0), breaker=CircuitBreaker(slo_seconds=10.0)
        )
        baseline = parameter_fingerprint(broker.agent)
        manager = self.manager_for(
            broker, tmp_path, lr=0.05, guard_min=4, segment_steps=4,
            episodes_per_update=4,
        )
        clusters = make_clusters(3)
        with manager:
            # Serve long enough that segments span real wall-time deltas
            # (nonzero rewards → a weight-changing update), then tick once:
            # exactly one update lands and the guard arms for probation.
            run_rounds(broker, clusters, max_rounds=10)
            status = manager.maybe_update()
            assert status["action"] == "update"
            assert manager.num_updates_applied == 1
            assert manager.guard.armed
            version_before = manager.policy_version
            # The swap applies at the next decision round; then the new
            # version regresses — the breaker opens during probation.
            run_rounds(broker, clusters, max_rounds=1)
            swapped = parameter_fingerprint(broker.agent)
            assert swapped != baseline  # lr>0 update actually changed weights
            broker.breaker.num_opens += 1
            run_rounds(broker, clusters, max_rounds=2)
            status = manager.maybe_update()
            assert status["action"] == "rollback"
            assert manager.num_rollbacks == 1
            # Rollback republishes the last GOOD weights under a NEW version.
            assert manager.policy_version == version_before + 1
            run_rounds(broker, clusters, max_rounds=1)
            assert parameter_fingerprint(broker.agent) == baseline
            info = manager.learning_info()
            assert info["current_checkpoint_version"] == info["last_good_checkpoint_version"]
            assert info["num_rollbacks"] == 1

    def test_clean_probation_promotes_to_last_good(self, tmp_path):
        broker = RequestBroker(tiny_agent(seed=0))
        manager = self.manager_for(broker, tmp_path, lr=0.05, guard_min=3)
        clusters = make_clusters(3)
        with manager:
            run_rounds(
                broker, clusters, max_rounds=12,
                on_round=lambda r: manager.maybe_update(),
            )
            info = manager.learning_info()
            # Probation passed cleanly at least once: the promoted version
            # became the rollback anchor and further updates kept landing.
            assert info["num_updates_applied"] >= 2
            assert info["num_rollbacks"] == 0
            assert info["last_good_checkpoint_version"] > 1


# ------------------------------------------------------------- wire protocol
class TestProtocolVersioning:
    def test_hello_negotiates_and_replies_carry_policy_version(self, server_factory):
        from repro.service.protocol import PROTOCOL_VERSION

        server = server_factory(tiny_agent(seed=0, total_executors=8))
        host, port = server.address
        env, observation = make_tpch_env(num_jobs=1, num_executors=8, seed=0)
        with PolicyClient(host, port) as client:
            welcome = client.hello(num_executors=8)
            assert welcome["protocol"] == PROTOCOL_VERSION
            assert welcome["policy_version"] == 1
            assert client.protocol == PROTOCOL_VERSION
            reply = client.decide(observation)
            assert reply["policy_version"] == 1
            assert client.policy_version == 1

    def test_legacy_hello_without_protocol_still_works(self, server_factory):
        server = server_factory(tiny_agent(seed=0, total_executors=8))
        host, port = server.address
        env, observation = make_tpch_env(num_jobs=1, num_executors=8, seed=0)
        with PolicyClient(host, port) as client:
            # A pre-versioning client sends no "protocol" field; the server
            # negotiates down to protocol 1 and keeps serving it.
            welcome = client.request(
                {"type": "hello", "seed": 0, "num_executors": 8}
            )
            assert welcome["type"] == "welcome"
            assert welcome["protocol"] == 1
            client.session_id = welcome["session_id"]
            assert client.decide(observation)["type"] == "action"

    def test_hot_swap_visible_to_wire_clients(self, server_factory):
        server = server_factory(tiny_agent(seed=0, total_executors=8))
        host, port = server.address
        env, observation = make_tpch_env(num_jobs=2, num_executors=8, seed=0)
        with PolicyClient(host, port) as client:
            client.hello(num_executors=8)
            assert client.decide(observation)["policy_version"] == 1
            server.install_policy(tiny_agent(seed=3).state_dict(), 2)
            assert client.decide(observation)["policy_version"] == 2
            assert client.policy_version == 2
            assert server.policy_version == 2


# ------------------------------------------------------------ fleet online
class TestFleetOnlineLearning:
    def test_fleet_collects_installs_and_updates_with_no_dropped_sessions(self):
        config = ServingConfig(num_shards=2, collect_experience=True)
        fleet = build_server(config, agent=tiny_agent(seed=0, total_executors=8))
        import tempfile

        with fleet, tempfile.TemporaryDirectory() as store_dir:
            manager = OnlineLearningManager(
                fleet,
                CheckpointStore(store_dir),
                OnlineLearningConfig(
                    episodes_per_update=1,
                    segment_steps=2,
                    guard_min_decisions=10**9,
                    trainer_process=False,
                ),
            )
            with manager:
                host, port = fleet.address
                summary = run_load(
                    host, port, num_sessions=4, num_jobs=2, num_executors=8,
                    min_total_decisions=60, seed=0,
                )
                # Zero dropped sessions: every decision was answered and all
                # of them by the policy path.
                assert summary["decisions"] >= 60
                assert set(summary["sources"]) == {"policy"}
                status = manager.maybe_update()
                assert status["action"] == "update"
                assert manager.num_updates_applied >= 1
                assert manager.policy_version == 2
                # The install reached every shard (ack per live shard).
                acks = fleet.install_policy(
                    tiny_agent(seed=4).state_dict(), manager.policy_version + 1
                )
                assert acks == 2
                # Control plane reports the learning state.
                assert fleet.router.learning_info is not None
                from repro.service import ControlClient

                with ControlClient(*fleet.control_address) as control:
                    stats = control.stats()
                assert stats["learning"]["num_updates_applied"] >= 1
