"""Unit tests for feature extraction, the graph neural network and the policy network."""

import numpy as np
import pytest

from repro.core import (
    FeatureConfig,
    GNNConfig,
    GraphNeuralNetwork,
    GraphStructure,
    PolicyConfig,
    PolicyNetwork,
    build_graph_features,
)
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, fork_join_job, make_tpch_job, sample_tpch_jobs


def live_observation(num_jobs=3, num_executors=8, seed=0):
    rng = np.random.default_rng(seed)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng, sizes=(2.0, 5.0)))
    env = SchedulingEnvironment(SimulatorConfig(num_executors=num_executors, seed=seed))
    return env, env.reset(jobs)


class TestFeatureExtraction:
    def test_shapes_and_rows(self):
        _, observation = live_observation()
        graph = build_graph_features(observation)
        total_nodes = sum(job.num_nodes for job in observation.job_dags)
        assert graph.num_nodes == total_nodes
        assert graph.node_features.shape == (total_nodes, 5)
        assert graph.adjacency.shape == (total_nodes, total_nodes)
        assert graph.job_ids.shape == (total_nodes,)
        assert graph.num_jobs == len(observation.job_dags)

    def test_schedulable_mask_matches_observation(self):
        _, observation = live_observation()
        graph = build_graph_features(observation)
        marked = {id(graph.nodes[i]) for i in np.flatnonzero(graph.schedulable_mask)}
        expected = {id(node) for node in observation.schedulable_nodes}
        assert marked == expected

    def test_adjacency_points_parent_to_child(self):
        _, observation = live_observation(num_jobs=1)
        graph = build_graph_features(observation)
        for node in graph.nodes:
            row = graph.row_of(node)
            for child in node.children:
                assert graph.adjacency[row, graph.row_of(child)] == 1.0

    def test_heights_are_zero_for_leaves_and_increase_upstream(self):
        job = fork_join_job(2, tasks_per_branch=2)
        env = SchedulingEnvironment(SimulatorConfig(num_executors=2, seed=0))
        observation = env.reset([job])
        graph = build_graph_features(observation)
        sink_row = graph.row_of(job.nodes[-1])
        source_row = graph.row_of(job.nodes[0])
        assert graph.node_heights[sink_row] == 0
        assert graph.node_heights[source_row] == 2

    def test_free_executor_feature_normalised(self):
        _, observation = live_observation(num_executors=8)
        config = FeatureConfig(executor_scale=8.0)
        graph = build_graph_features(observation, config)
        assert np.allclose(graph.node_features[:, 3], observation.num_free_executors / 8.0)

    def test_interarrival_hint_feature(self):
        _, observation = live_observation()
        config = FeatureConfig(include_interarrival_hint=True, interarrival_scale=10.0)
        graph = build_graph_features(observation, config, interarrival_hint=20.0)
        assert graph.node_features.shape[1] == 6
        assert np.allclose(graph.node_features[:, 5], 2.0)

    def test_duration_feature_can_be_hidden(self):
        _, observation = live_observation()
        graph = build_graph_features(observation, FeatureConfig(include_task_duration=False))
        assert np.allclose(graph.node_features[:, 1], 0.0)


def recursive_height(node, cache=None):
    """Oracle for the vectorized height computation: 1 + max(child heights)."""
    if cache is None:
        cache = {}
    if id(node) in cache:
        return cache[id(node)]
    value = 1 + max((recursive_height(c, cache) for c in node.children), default=-1)
    cache[id(node)] = value
    return value


class TestGraphStructure:
    def test_vectorized_heights_match_recursive_definition(self):
        rng = np.random.default_rng(5)
        jobs = sample_tpch_jobs(6, rng, sizes=(2.0, 5.0))
        structure = GraphStructure(jobs)
        cache = {}
        expected = np.array([recursive_height(node, cache) for node in structure.nodes])
        assert np.array_equal(structure.node_heights, expected)

    def test_frontier_levels_cover_every_edge_exactly_once(self):
        rng = np.random.default_rng(6)
        jobs = sample_tpch_jobs(4, rng, sizes=(2.0, 5.0))
        structure = GraphStructure(jobs)
        total_edges = sum(len(level.message_rows) for level in structure.frontier_levels)
        assert total_edges == len(structure.edge_parent_rows)
        for level in structure.frontier_levels:
            # Every target row really sits at this level's height...
            assert np.all(structure.node_heights[level.target_rows] == level.height)
            # ...and every message comes from strictly below it.
            child_rows = level.child_rows[level.message_rows]
            assert np.all(structure.node_heights[child_rows] < level.height)
            # Every frontier node receives at least one message (height >= 1
            # means it has children by definition of the longest-path height).
            assert set(level.target_segments.tolist()) == set(range(level.num_targets))

    def test_adjacency_is_lazy_and_cached(self):
        rng = np.random.default_rng(7)
        structure = GraphStructure(sample_tpch_jobs(2, rng, sizes=(2.0, 5.0)))
        assert structure._adjacency is None
        first = structure.adjacency
        assert structure.adjacency is first
        for parent, child in zip(structure.edge_parent_rows, structure.edge_child_rows):
            assert first[parent, child] == 1.0
        assert first.sum() == len(structure.edge_parent_rows)


class TestGraphNeuralNetwork:
    def make_gnn(self, **overrides):
        config = GNNConfig(**overrides)
        return GraphNeuralNetwork(config, np.random.default_rng(0)), config

    def test_embedding_shapes(self):
        _, observation = live_observation()
        graph = build_graph_features(observation)
        gnn, config = self.make_gnn()
        embeddings = gnn(graph)
        assert embeddings.node_embeddings.shape == (graph.num_nodes, config.embedding_dim)
        assert embeddings.job_embeddings.shape == (graph.num_jobs, config.embedding_dim)
        assert embeddings.global_embedding.shape == (1, config.embedding_dim)

    def test_information_flows_child_to_parent_only(self):
        job = fork_join_job(2, tasks_per_branch=2)
        env = SchedulingEnvironment(SimulatorConfig(num_executors=2, seed=0))
        observation = env.reset([job])
        graph = build_graph_features(observation)
        gnn, _ = self.make_gnn()
        base = gnn.node_embeddings(graph).data.copy()

        # Perturbing a leaf (sink) feature changes its ancestors' embeddings...
        sink_row = graph.row_of(job.nodes[-1])
        source_row = graph.row_of(job.nodes[0])
        graph.node_features[sink_row, 0] += 5.0
        perturbed = gnn.node_embeddings(graph).data
        assert not np.allclose(perturbed[source_row], base[source_row])
        graph.node_features[sink_row, 0] -= 5.0

        # ...but perturbing the root does not change the sink's embedding.
        graph.node_features[source_row, 0] += 5.0
        perturbed = gnn.node_embeddings(graph).data
        assert np.allclose(perturbed[sink_row], base[sink_row])

    def test_single_level_aggregation_flag(self):
        _, observation = live_observation(num_jobs=1)
        graph = build_graph_features(observation)
        two_level, _ = self.make_gnn(two_level_aggregation=True)
        single, _ = self.make_gnn(two_level_aggregation=False)
        assert not np.allclose(
            two_level(graph).node_embeddings.data, single(graph).node_embeddings.data
        )

    def test_gradients_flow_to_all_parameters(self):
        _, observation = live_observation(num_jobs=2)
        graph = build_graph_features(observation)
        gnn, _ = self.make_gnn()
        out = gnn(graph)
        (out.global_embedding.sum() + out.node_embeddings.sum()).backward()
        grads = [p.grad is not None for p in gnn.parameters()]
        assert all(grads)

    def test_message_passing_depth_cap(self):
        _, observation = live_observation(num_jobs=1)
        graph = build_graph_features(observation)
        shallow, _ = self.make_gnn(max_message_passing_depth=0)
        embeddings = shallow.node_embeddings(graph)
        # With no message passing the embedding is just prep(x).
        assert np.allclose(embeddings.data, shallow.prep(
            __import__("repro.autograd", fromlist=["Tensor"]).Tensor(graph.node_features)
        ).data)


class TestPolicyNetwork:
    def test_node_logit_shape(self):
        _, observation = live_observation()
        graph = build_graph_features(observation)
        gnn = GraphNeuralNetwork(GNNConfig(), np.random.default_rng(0))
        policy = PolicyNetwork(PolicyConfig(), np.random.default_rng(1))
        logits = policy.node_logits(graph, gnn(graph))
        assert logits.shape == (graph.num_nodes,)

    def test_limit_logits_scalar_encoding(self):
        _, observation = live_observation()
        graph = build_graph_features(observation)
        gnn = GraphNeuralNetwork(GNNConfig(), np.random.default_rng(0))
        policy = PolicyNetwork(PolicyConfig(), np.random.default_rng(1))
        fractions = np.linspace(0.1, 1.0, 5).reshape(-1, 1)
        logits = policy.limit_logits(graph, gnn(graph), 0, fractions)
        assert logits.shape == (5,)

    def test_limit_logits_validate_width(self):
        _, observation = live_observation()
        graph = build_graph_features(observation)
        gnn = GraphNeuralNetwork(GNNConfig(), np.random.default_rng(0))
        policy = PolicyNetwork(PolicyConfig(limit_input_dim=4), np.random.default_rng(1))
        with pytest.raises(ValueError):
            policy.limit_logits(graph, gnn(graph), 0, np.ones((3, 2)))

    def test_class_head_disabled_by_default(self):
        policy = PolicyNetwork(PolicyConfig(), np.random.default_rng(0))
        _, observation = live_observation()
        graph = build_graph_features(observation)
        gnn = GraphNeuralNetwork(GNNConfig(), np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            policy.class_logits(graph, gnn(graph), 0, observation.executor_classes)

    def test_class_head_shapes(self):
        from repro.simulator import multi_resource_classes

        policy = PolicyNetwork(
            PolicyConfig(use_executor_class_head=True), np.random.default_rng(0)
        )
        _, observation = live_observation()
        graph = build_graph_features(observation)
        gnn = GraphNeuralNetwork(GNNConfig(), np.random.default_rng(0))
        logits = policy.class_logits(graph, gnn(graph), 0, multi_resource_classes())
        assert logits.shape == (4,)

    def test_no_graph_embedding_ignores_embeddings(self):
        _, observation = live_observation()
        graph = build_graph_features(observation)
        gnn_a = GraphNeuralNetwork(GNNConfig(), np.random.default_rng(0))
        gnn_b = GraphNeuralNetwork(GNNConfig(), np.random.default_rng(7))
        policy = PolicyNetwork(PolicyConfig(use_graph_embedding=False), np.random.default_rng(1))
        logits_a = policy.node_logits(graph, gnn_a(graph))
        logits_b = policy.node_logits(graph, gnn_b(graph))
        assert np.allclose(logits_a.data, logits_b.data)
