"""Unit tests for the TPC-H-like and Alibaba-like workload generators."""

import numpy as np
import pytest

from repro.simulator import topological_order
from repro.workloads import (
    TPCH_INPUT_SIZES_GB,
    TPCH_QUERY_IDS,
    ScalingProfile,
    batched_arrivals,
    bursty_arrivals,
    estimate_cluster_load,
    estimated_runtime,
    pareto_arrivals,
    make_tpch_job,
    poisson_arrivals,
    random_dag_edges,
    random_job,
    runtime_vs_parallelism,
    sample_alibaba_jobs,
    sample_tpch_jobs,
    total_work_of,
    tpch_query_template,
    trace_arrivals,
)
from repro.workloads.alibaba import sample_alibaba_job, split_trace


class TestTPCHTemplates:
    def test_all_22_queries_have_templates(self):
        for query_id in TPCH_QUERY_IDS:
            template = tpch_query_template(query_id)
            assert 3 <= template.num_stages <= 25
            assert template.edges or template.num_stages == 1

    def test_templates_are_deterministic(self):
        first = tpch_query_template(5)
        second = tpch_query_template(5)
        assert first is second or first == second

    def test_invalid_query_id(self):
        with pytest.raises(ValueError):
            tpch_query_template(23)
        with pytest.raises(ValueError):
            make_tpch_job(0, 10.0)

    def test_templates_differ_across_queries(self):
        shapes = {tpch_query_template(q).num_stages for q in TPCH_QUERY_IDS}
        assert len(shapes) > 3

    def test_total_work_grows_with_input_size(self):
        template = tpch_query_template(9)
        works = [template.total_work(size) for size in TPCH_INPUT_SIZES_GB]
        assert all(a < b for a, b in zip(works, works[1:]))


class TestTPCHJobs:
    def test_job_is_valid_dag(self):
        job = make_tpch_job(7, 20.0)
        order = topological_order(job.nodes)
        assert len(order) == job.num_nodes

    def test_job_has_work_inflation(self):
        job = make_tpch_job(9, 100.0)
        assert job.work_inflation is not None
        assert job.work_inflation(1) == pytest.approx(1.0)
        assert job.work_inflation(500) > 1.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_tpch_job(1, -5.0)

    def test_sample_tpch_jobs_count_and_names(self):
        jobs = sample_tpch_jobs(7, np.random.default_rng(0))
        assert len(jobs) == 7
        assert len({job.name for job in jobs}) == 7

    def test_sample_requires_positive_count(self):
        with pytest.raises(ValueError):
            sample_tpch_jobs(0, np.random.default_rng(0))

    def test_heavy_tailed_work_distribution(self):
        jobs = sample_tpch_jobs(60, np.random.default_rng(1))
        works = sorted((job.total_work for job in jobs), reverse=True)
        top_quarter = sum(works[: len(works) // 4])
        assert top_quarter / sum(works) > 0.45

    def test_total_work_of(self):
        jobs = sample_tpch_jobs(3, np.random.default_rng(2))
        assert total_work_of(jobs) == pytest.approx(sum(j.total_work for j in jobs))


class TestScaling:
    def test_runtime_decreases_up_to_sweet_spot(self):
        profile = ScalingProfile(sweet_spot=20, parallel_fraction=0.95, inflation_rate=0.4)
        runtimes = [estimated_runtime(1000.0, profile, p) for p in (1, 5, 10, 20)]
        assert all(a > b for a, b in zip(runtimes, runtimes[1:]))

    def test_diminishing_returns_beyond_sweet_spot(self):
        profile = ScalingProfile(sweet_spot=10, parallel_fraction=0.9, inflation_rate=0.5)
        gain_before = estimated_runtime(1000, profile, 5) - estimated_runtime(1000, profile, 10)
        gain_after = estimated_runtime(1000, profile, 50) - estimated_runtime(1000, profile, 100)
        assert gain_before > gain_after

    def test_work_inflation_at_or_below_sweet_spot_is_one(self):
        profile = ScalingProfile(sweet_spot=10)
        assert profile.work_inflation(1) == 1.0
        assert profile.work_inflation(10) == 1.0
        assert profile.work_inflation(20) > 1.0

    def test_work_inflation_fractional_sweet_spot(self):
        # Parallelism just below a fractional sweet spot still sees no
        # inflation; just above it sees some.
        profile = ScalingProfile(sweet_spot=10.5)
        assert profile.work_inflation(10) == 1.0
        assert profile.work_inflation(11) > 1.0

    def test_work_inflation_tiny_sweet_spot_denominator_clamped(self):
        # sweet_spot < 1 would explode the excess/sweet_spot ratio without the
        # max(sweet_spot, 1) clamp in the denominator.
        profile = ScalingProfile(sweet_spot=0.5, inflation_rate=0.4)
        assert profile.work_inflation(1) == pytest.approx(1.0 + 0.4 * 0.5)
        assert profile.work_inflation(2) == pytest.approx(1.0 + 0.4 * 1.5)

    def test_work_inflation_grows_monotonically_beyond_sweet_spot(self):
        profile = ScalingProfile(sweet_spot=8, inflation_rate=0.3)
        values = [profile.work_inflation(p) for p in range(8, 30)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_work_inflation_zero_rate_never_inflates(self):
        profile = ScalingProfile(sweet_spot=5, inflation_rate=0.0)
        assert profile.work_inflation(500) == 1.0

    def test_scaled_profile_shrinks_sweet_spot(self):
        profile = ScalingProfile(sweet_spot=40)
        assert profile.scaled(2.0).sweet_spot < profile.scaled(100.0).sweet_spot
        with pytest.raises(ValueError):
            profile.scaled(0.0)

    def test_runtime_vs_parallelism_series(self):
        profile = ScalingProfile()
        series = runtime_vs_parallelism(500.0, profile, max_parallelism=10)
        assert len(series) == 10
        assert series[0][0] == 1
        with pytest.raises(ValueError):
            estimated_runtime(100.0, profile, 0)


class TestAlibabaWorkload:
    def test_stage_count_distribution(self):
        rng = np.random.default_rng(0)
        jobs = [sample_alibaba_job(rng) for _ in range(400)]
        at_least_four = sum(1 for job in jobs if job.num_nodes >= 4) / len(jobs)
        assert 0.45 <= at_least_four <= 0.75

    def test_memory_requests_in_range(self):
        rng = np.random.default_rng(1)
        jobs = sample_alibaba_jobs(20, rng)
        for job in jobs:
            for node in job.nodes:
                assert 0.0 < node.mem_request <= 1.0

    def test_memory_can_be_disabled(self):
        rng = np.random.default_rng(2)
        job = sample_alibaba_job(rng, with_memory=False)
        assert all(node.mem_request == 0.0 for node in job.nodes)

    def test_arrivals_are_increasing(self):
        jobs = sample_alibaba_jobs(10, np.random.default_rng(3), mean_interarrival=5.0)
        arrivals = [job.arrival_time for job in jobs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_jobs_are_valid_dags(self):
        jobs = sample_alibaba_jobs(30, np.random.default_rng(4))
        for job in jobs:
            assert len(topological_order(job.nodes)) == job.num_nodes

    def test_split_trace_halves(self):
        jobs = sample_alibaba_jobs(11, np.random.default_rng(5))
        train, test = split_trace(jobs)
        assert len(train) == 5 and len(test) == 6

    def test_positive_count_required(self):
        with pytest.raises(ValueError):
            sample_alibaba_jobs(0, np.random.default_rng(0))


class TestArrivalProcesses:
    def test_batched_sets_all_to_start(self):
        jobs = sample_tpch_jobs(4, np.random.default_rng(0))
        batched_arrivals(jobs, start_time=7.0)
        assert all(job.arrival_time == 7.0 for job in jobs)

    def test_poisson_mean_interarrival(self):
        jobs = sample_tpch_jobs(300, np.random.default_rng(0), sizes=(2.0,))
        rng = np.random.default_rng(1)
        poisson_arrivals(jobs, 10.0, rng)
        gaps = np.diff([job.arrival_time for job in jobs])
        assert 8.0 < gaps.mean() < 12.0

    def test_poisson_requires_positive_interarrival(self):
        with pytest.raises(ValueError):
            poisson_arrivals([], 0.0, np.random.default_rng(0))

    def test_trace_arrivals(self):
        jobs = sample_tpch_jobs(3, np.random.default_rng(0))
        trace_arrivals(jobs, [1.0, 5.0, 9.0])
        assert [job.arrival_time for job in jobs] == [1.0, 5.0, 9.0]
        with pytest.raises(ValueError):
            trace_arrivals(jobs, [1.0])
        with pytest.raises(ValueError):
            trace_arrivals(jobs, [1.0, -2.0, 3.0])

    def test_trace_arrivals_validation_leaves_arrivals_coerced_to_float(self):
        jobs = sample_tpch_jobs(2, np.random.default_rng(0))
        trace_arrivals(jobs, [0, 3])
        assert all(isinstance(job.arrival_time, float) for job in jobs)
        # Too many arrival times is as invalid as too few.
        with pytest.raises(ValueError):
            trace_arrivals(jobs, [0.0, 1.0, 2.0])
        # Zero is a valid arrival time (only negatives are rejected).
        trace_arrivals(jobs, [0.0, 0.0])
        assert [job.arrival_time for job in jobs] == [0.0, 0.0]

    def test_bursty_arrivals_mean_and_determinism(self):
        jobs = sample_tpch_jobs(800, np.random.default_rng(0), sizes=(2.0,))
        bursty_arrivals(jobs, 10.0, np.random.default_rng(1))
        times = [job.arrival_time for job in jobs]
        gaps = np.diff(times)
        assert times[0] == 0.0
        assert all(gap >= 0 for gap in gaps)
        # The quiet mean is rescaled so the long-run mean stays on target.
        assert 7.0 < gaps.mean() < 13.0
        # Markov modulation makes interarrivals burstier than Poisson (CV > 1).
        assert gaps.std() / gaps.mean() > 1.05
        repeat = sample_tpch_jobs(800, np.random.default_rng(0), sizes=(2.0,))
        bursty_arrivals(repeat, 10.0, np.random.default_rng(1))
        assert [job.arrival_time for job in repeat] == times

    def test_bursty_arrivals_validation(self):
        jobs = sample_tpch_jobs(3, np.random.default_rng(0))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bursty_arrivals(jobs, 0.0, rng)
        with pytest.raises(ValueError):
            bursty_arrivals(jobs, 10.0, rng, burst_factor=0.5)
        with pytest.raises(ValueError):
            bursty_arrivals(jobs, 10.0, rng, enter_burst=1.5)

    def test_pareto_arrivals_mean_and_tail(self):
        jobs = sample_tpch_jobs(3000, np.random.default_rng(0), sizes=(2.0,))
        pareto_arrivals(jobs, 10.0, np.random.default_rng(2), shape=1.5)
        gaps = np.diff([job.arrival_time for job in jobs])
        assert all(gap >= 0 for gap in gaps)
        # Heavy tail: the sample mean is noisy, bound it loosely...
        assert 5.0 < gaps.mean() < 20.0
        # ...but the largest gap dwarfs the mean (the point of the scenario).
        assert gaps.max() > 10 * gaps.mean()

    def test_pareto_arrivals_validation(self):
        jobs = sample_tpch_jobs(3, np.random.default_rng(0))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            pareto_arrivals(jobs, -1.0, rng)
        with pytest.raises(ValueError):
            pareto_arrivals(jobs, 10.0, rng, shape=1.0)

    def test_estimate_cluster_load(self):
        jobs = sample_tpch_jobs(20, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        poisson_arrivals(jobs, 30.0, rng)
        load = estimate_cluster_load(jobs, num_executors=50)
        assert load > 0
        with pytest.raises(ValueError):
            estimate_cluster_load(jobs, num_executors=0)
        # Batched arrivals have no arrival span; the horizon falls back to the
        # ideal drain time, so the offered load is exactly 1.0.
        assert estimate_cluster_load(batched_arrivals(jobs), num_executors=10) == 1.0
        assert estimate_cluster_load(batched_arrivals(jobs), 10, horizon=100.0) > 0
        with pytest.raises(ValueError):
            estimate_cluster_load([], 10)

    def test_estimate_cluster_load_horizon_branches(self):
        jobs = sample_tpch_jobs(10, np.random.default_rng(0), sizes=(2.0, 5.0))
        # Inferred horizon equals the arrival span, so halving the explicit
        # horizon doubles the load.
        poisson_arrivals(jobs, 20.0, np.random.default_rng(1))
        span = max(j.arrival_time for j in jobs) - min(j.arrival_time for j in jobs)
        inferred = estimate_cluster_load(jobs, num_executors=10)
        explicit = estimate_cluster_load(jobs, num_executors=10, horizon=span / 2)
        assert explicit == pytest.approx(2 * inferred)
        # An explicit non-positive horizon is rejected outright.
        with pytest.raises(ValueError):
            estimate_cluster_load(jobs, num_executors=10, horizon=0.0)
        with pytest.raises(ValueError):
            estimate_cluster_load(jobs, num_executors=10, horizon=-5.0)

    def test_estimate_cluster_load_batched_zero_work_still_raises(self):
        from types import SimpleNamespace

        # Batched arrivals with zero total work leave nothing to infer a
        # horizon from; the error says to pass one explicitly.  (Real Node
        # objects forbid zero durations, so a stub exercises the guard.)
        jobs = [SimpleNamespace(total_work=0.0, arrival_time=0.0)]
        with pytest.raises(ValueError, match="pass horizon explicitly"):
            estimate_cluster_load(jobs, num_executors=4)


class TestRandomGenerators:
    def test_random_dag_edges_are_acyclic(self):
        rng = np.random.default_rng(0)
        edges = random_dag_edges(10, rng, edge_probability=0.5)
        assert all(src < dst for src, dst in edges)

    def test_random_dag_requires_positive_nodes(self):
        with pytest.raises(ValueError):
            random_dag_edges(0, np.random.default_rng(0))

    def test_random_job_valid(self):
        job = random_job(8, np.random.default_rng(1))
        assert job.num_nodes == 8
        assert len(topological_order(job.nodes)) == 8
