"""Fault-injection and control-plane tests for the sharded serving fleet.

The fleet's load-bearing guarantees, beyond what the differential runner
already pins (``sharded_vs_serial_service`` = decisions are bit-identical to
a single server):

* **admission control**: above ``max_sessions`` a new ``hello`` is refused
  with a clean ``admission_rejected`` error frame, never an unbounded queue;
* **fault isolation**: killing a shard mid-session yields a per-session
  ``shard_failed`` error (not a hang), the control plane marks the shard
  unhealthy, surviving shards keep serving, and new sessions that hash to
  the dead shard are reassigned to a live one;
* **live operability**: the control plane reports health/per-shard stats and
  reconfigures the admission limit and shard drain state without restarts.

Every test binds ``port=0`` and reads the bound address back, so nothing
here can race on ports.  The fleet fixtures always stop their processes in
teardown, even when a test body fails.
"""

import pytest

from repro.core import DecimaAgent, DecimaConfig, FeatureConfig
from repro.service import (
    AdaptiveBatchWindow,
    ControlClient,
    PolicyClient,
    ProtocolError,
    ServingFleet,
    drive_episode,
    run_load,
    shard_for_session,
)
from repro.simulator import SchedulingEnvironment, SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs

import numpy as np


def tiny_agent():
    """A small fixed-seed agent — shards rebuild it from spec + state, so a
    tiny network keeps fleet start-up cheap."""
    return DecimaAgent(
        total_executors=6,
        config=DecimaConfig(
            seed=0, hidden_sizes=(16, 8), embedding_dim=4,
            feature=FeatureConfig(),
        ),
    )


def session_id_on_shard(shard: int, num_shards: int, prefix: str = "pin") -> str:
    """A session id whose hash prefers ``shard`` (for placement-exact tests)."""
    for attempt in range(10_000):
        candidate = f"{prefix}-{attempt}"
        if shard_for_session(candidate, num_shards) == shard:
            return candidate
    raise AssertionError("crc32 could not find a pinned id (impossible)")


def tiny_jobs(seed: int):
    rng = np.random.default_rng(seed)
    return batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))


# ------------------------------------------------------------------ pure units
class TestShardHashing:
    def test_stable_and_in_range(self):
        for num_shards in (1, 2, 4, 7):
            for index in range(32):
                shard = shard_for_session(f"s{index}", num_shards)
                assert 0 <= shard < num_shards
                assert shard == shard_for_session(f"s{index}", num_shards)

    def test_spreads_sessions(self):
        shards = {shard_for_session(f"s{i}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            shard_for_session("s0", 0)


class TestAdaptiveBatchWindow:
    def test_idle_uses_min_window(self):
        window = AdaptiveBatchWindow(min_ms=0.2, max_ms=8.0, saturate_at=16)
        for _ in range(50):
            window.observe(1)
        assert window.seconds() == pytest.approx(0.2e-3, rel=1e-6)

    def test_saturated_uses_max_window(self):
        window = AdaptiveBatchWindow(min_ms=0.2, max_ms=8.0, saturate_at=16)
        for _ in range(200):
            window.observe(64)
        assert window.seconds() == pytest.approx(8.0e-3, rel=1e-3)

    def test_window_grows_with_offered_load(self):
        window = AdaptiveBatchWindow(min_ms=0.5, max_ms=6.0, saturate_at=8)
        readings = []
        for batch_size in (1, 2, 4, 8):
            for _ in range(100):
                window.observe(batch_size)
            readings.append(window.seconds())
        assert readings == sorted(readings)
        assert readings[0] < readings[-1]

    def test_ema_adapts_back_down(self):
        window = AdaptiveBatchWindow(min_ms=0.2, max_ms=8.0, saturate_at=16)
        for _ in range(100):
            window.observe(32)
        saturated = window.seconds()
        for _ in range(100):
            window.observe(1)
        assert window.seconds() < saturated


# ------------------------------------------------------------ fleet behaviour
@pytest.fixture(scope="module")
def fleet():
    """One shared 2-shard fleet for the non-destructive control-plane tests."""
    with ServingFleet(tiny_agent(), num_shards=2, max_sessions=8) as running:
        yield running


class TestFleetServing:
    def test_full_episode_through_router(self, fleet):
        env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=0))
        with PolicyClient(*fleet.address) as client:
            client.hello(num_executors=6, seed=0)
            summary = drive_episode(client, env, tiny_jobs(0), seed=0)
        assert summary["decisions"] > 0
        assert summary["unfinished_jobs"] == 0
        assert set(summary["sources"]) == {"policy"}

    def test_router_assigns_session_ids_when_absent(self, fleet):
        with PolicyClient(*fleet.address) as client:
            welcome = client.hello(num_executors=6)
            assert welcome["session_id"].startswith("router-")

    def test_health_reports_both_shards_alive(self, fleet):
        with ControlClient(*fleet.control_address) as control:
            health = control.health()
        assert health["num_healthy"] == 2
        assert [s["probe_ok"] for s in health["shards"]] == [True, True]
        assert health["max_sessions"] == 8

    def test_sessions_land_on_their_hashed_shards(self, fleet):
        pinned = [session_id_on_shard(shard, 2) for shard in (0, 1)]
        clients = [PolicyClient(*fleet.address) for _ in pinned]
        try:
            for client, session_id in zip(clients, pinned):
                client.hello(session_id=session_id, num_executors=6)
            with ControlClient(*fleet.control_address) as control:
                health = control.health()
            per_shard = [s["active_sessions"] for s in health["shards"]]
            assert per_shard == [1, 1]
            assert health["active_sessions"] == 2
        finally:
            for client in clients:
                client.bye()
                client.close()

    def test_stats_aggregate_per_shard_broker_accounting(self, fleet):
        # Serve one short episode on each shard so both brokers have counts.
        for shard in (0, 1):
            env = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=shard))
            with PolicyClient(*fleet.address) as client:
                client.hello(session_id=session_id_on_shard(shard, 2, "stats"),
                             num_executors=6, seed=shard)
                drive_episode(client, env, tiny_jobs(shard), seed=shard,
                              max_decisions=5)
        with ControlClient(*fleet.control_address) as control:
            stats = control.stats()
        assert stats["router"]["routed_sessions"] >= 2
        assert stats["router"]["forwarded_frames"] > 0
        for entry in stats["shards"]:
            assert entry["ok"]
            assert entry["broker"]["num_decisions"] >= 5
            assert entry["broker"]["latency_ms"]["count"] >= 5
            assert entry["batch_window"]["window_ms"] > 0

    def test_admission_control_rejects_over_limit(self, fleet):
        with ControlClient(*fleet.control_address) as control:
            control.reconfigure(max_sessions=1)
            try:
                with PolicyClient(*fleet.address) as first:
                    first.hello(num_executors=6)
                    with PolicyClient(*fleet.address) as second:
                        with pytest.raises(ProtocolError) as excinfo:
                            second.hello(num_executors=6)
                assert excinfo.value.code == "admission_rejected"
                assert "admission limit" in str(excinfo.value)
            finally:
                control.reconfigure(max_sessions=8)
            assert control.stats()["router"]["rejected_sessions"] >= 1

    def test_draining_shard_stops_taking_new_sessions(self, fleet):
        pinned = session_id_on_shard(0, 2, "drain")
        with ControlClient(*fleet.control_address) as control:
            reply = control.reconfigure(shard=0, draining=True)
            assert reply["changed"] == {"shard": 0, "draining": True}
            try:
                with PolicyClient(*fleet.address) as client:
                    # Hashes to shard 0, but shard 0 is draining: the router
                    # must walk forward and place it on shard 1.
                    client.hello(session_id=pinned, num_executors=6)
                    health = control.health()
                    assert health["shards"][0]["active_sessions"] == 0
                    assert health["shards"][1]["active_sessions"] == 1
            finally:
                control.reconfigure(shard=0, draining=False)

    def test_reconfigure_rejects_nonsense(self, fleet):
        with ControlClient(*fleet.control_address) as control:
            with pytest.raises(ProtocolError, match="changes nothing"):
                control.reconfigure()
            with pytest.raises(ProtocolError, match="unknown shard"):
                control.reconfigure(shard=99, draining=True)


# ------------------------------------------------------------- fault injection
class TestFaultInjection:
    """Destructive tests: each gets its own throwaway fleet."""

    def test_shard_death_is_clean_and_survivors_keep_serving(self):
        with ServingFleet(tiny_agent(), num_shards=2) as fleet:
            doomed = session_id_on_shard(0, 2, "doomed")
            survivor = session_id_on_shard(1, 2, "survivor")
            env_doomed = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=0))
            env_survivor = SchedulingEnvironment(SimulatorConfig(num_executors=6, seed=1))
            with PolicyClient(*fleet.address) as victim, \
                 PolicyClient(*fleet.address) as bystander:
                victim.hello(session_id=doomed, num_executors=6, seed=0)
                bystander.hello(session_id=survivor, num_executors=6, seed=1)
                obs_doomed = env_doomed.reset(tiny_jobs(0), seed=0)
                obs_survivor = env_survivor.reset(tiny_jobs(1), seed=1)
                assert victim.decide(obs_doomed)["type"] == "action"
                assert bystander.decide(obs_survivor)["type"] == "action"

                fleet.kill_shard(0)

                # The victim gets a machine-readable per-session error...
                with pytest.raises(ProtocolError) as excinfo:
                    victim.decide(obs_doomed)
                assert excinfo.value.code == "shard_failed"
                # ...the bystander (on the surviving shard) keeps deciding...
                assert bystander.decide(obs_survivor)["type"] == "action"
                # ...the control plane marks the dead shard unhealthy...
                with ControlClient(*fleet.control_address) as control:
                    health = control.health()
                assert health["num_healthy"] == 1
                assert health["shards"][0]["healthy"] is False
                assert health["shards"][1]["healthy"] is True
                # ...and a NEW session whose hash prefers the dead shard is
                # reassigned to the survivor instead of failing.
                with PolicyClient(*fleet.address) as reassigned:
                    welcome = reassigned.hello(
                        session_id=session_id_on_shard(0, 2, "reborn"),
                        num_executors=6,
                    )
                    assert welcome["type"] == "welcome"

    def test_all_shards_dead_rejects_new_sessions(self):
        with ServingFleet(tiny_agent(), num_shards=1) as fleet:
            fleet.kill_shard(0)
            with PolicyClient(*fleet.address) as client:
                with pytest.raises(ProtocolError) as excinfo:
                    client.hello(num_executors=6)
            assert excinfo.value.code in ("no_healthy_shards", "shard_failed")


# --------------------------------------------------------- sustained-load tier
@pytest.mark.slow
class TestFleetUnderLoad:
    """Heavier integration coverage for the merge-gating (slow) tier."""

    def test_four_shard_fleet_sustains_multi_session_load(self):
        with ServingFleet(tiny_agent(), num_shards=4) as fleet:
            host, port = fleet.address
            summary = run_load(host, port, num_sessions=8, num_jobs=2,
                               num_executors=6, min_total_decisions=200)
            with ControlClient(*fleet.control_address) as control:
                health = control.health()
                stats = control.stats()
        assert summary["decisions"] >= 200
        assert summary["sources"].get("policy", 0) == summary["decisions"]
        assert health["num_healthy"] == 4
        # Load spreads: every shard served some decisions.
        served = [entry["broker"]["num_decisions"] for entry in stats["shards"]]
        assert all(count > 0 for count in served)
