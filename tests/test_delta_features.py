"""Delta-driven feature refresh + hot-path kernel/arena tests (issue 7).

The load-bearing guarantee: ``GraphCache.features`` may serve a step from the
*delta* path (recompute only rows whose task counters changed since the last
step) and the result must be **bit-for-bit** identical to a from-scratch
rebuild.  A hypothesis property test drives random seeded episodes and checks
that at every decision; deterministic tests pin the counter/epoch/compaction
bookkeeping and the kernel/arena primitives behind it.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from _helpers import make_decima_agent, make_tpch_env
from repro.autograd import Tensor
from repro.core.features import FeatureConfig, GraphCache, build_graph_features
from repro.core.kernels import (
    Workspace,
    get_backend,
    kernel_backend_names,
    leaky_relu_inplace,
    mlp_forward,
    numba_available,
)
from repro.core.nn import MLP
from repro.service.session import SessionState
from repro.simulator.environment import Action
from repro.simulator.jobdag import JobDAG, Node


def _chain_job(num_nodes=3, num_tasks=4, duration=10.0):
    nodes = [
        Node(node_id=i, num_tasks=num_tasks, task_duration=duration)
        for i in range(num_nodes)
    ]
    return JobDAG(nodes, edges=[(i, i + 1) for i in range(num_nodes - 1)])


def _drive_and_compare(seed, choices, staggered):
    """Step a seeded episode by ``choices``; every step the persistent cache's
    (possibly delta-served) features must equal a stateless rebuild exactly."""
    env, observation = make_tpch_env(
        num_jobs=3, num_executors=6, seed=seed, staggered=staggered
    )
    cache = GraphCache()
    config = FeatureConfig()
    for choice in choices:
        if not observation.job_dags:
            break
        cached = cache.features(observation, config)
        scratch = build_graph_features(observation, config)
        assert np.array_equal(cached.node_features, scratch.node_features)
        assert np.array_equal(cached.schedulable_mask, scratch.schedulable_mask)
        if not observation.schedulable_nodes:
            break
        node = observation.schedulable_nodes[choice % len(observation.schedulable_nodes)]
        action = Action(node=node, parallelism_limit=1 + choice % 4)
        observation, _, done = env.step(action)
        if done:
            break
    return cache


class TestDeltaEqualsFullRefresh:
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 50),
        choices=st.lists(st.integers(0, 1_000), min_size=5, max_size=40),
        staggered=st.booleans(),
    )
    def test_delta_path_bit_identical_over_random_episodes(
        self, seed, choices, staggered
    ):
        cache = _drive_and_compare(seed, choices, staggered)
        # The property is only interesting if the delta path actually served
        # steps; with a static job set it serves everything after step one.
        if not staggered and len(choices) >= 10:
            assert cache.num_delta_refreshes > 0

    def test_delta_path_serves_steady_state(self):
        cache = _drive_and_compare(seed=1, choices=list(range(25)), staggered=False)
        assert cache.num_full_refreshes >= 1
        assert cache.num_delta_refreshes >= cache.num_full_refreshes


class TestRefreshBookkeeping:
    def _observation(self, env_obs=None, seed=4):
        env, observation = make_tpch_env(num_jobs=2, seed=seed)
        return observation

    def test_first_call_is_full_then_delta(self):
        observation = self._observation()
        cache = GraphCache()
        cache.features(observation)
        assert (cache.num_full_refreshes, cache.num_delta_refreshes) == (1, 0)
        cache.features(observation)
        assert (cache.num_full_refreshes, cache.num_delta_refreshes) == (1, 1)

    def test_touched_node_recomputed_by_delta(self):
        observation = self._observation()
        cache = GraphCache()
        first = cache.features(observation)
        node = observation.job_dags[0].nodes[0]
        node.num_running_tasks += 1  # mutate without logging...
        node.job.log_feature_touch(node)  # ...then log explicitly
        second = cache.features(observation)
        assert cache.num_delta_refreshes == 1
        scratch = build_graph_features(observation)
        assert np.array_equal(second.node_features, scratch.node_features)
        assert not np.array_equal(second.node_features, first.node_features)

    def test_feature_config_change_forces_full_refresh(self):
        observation = self._observation()
        cache = GraphCache()
        cache.features(observation, FeatureConfig())
        cache.features(observation, FeatureConfig(task_scale=7.0))
        assert cache.num_full_refreshes == 2
        assert cache.num_delta_refreshes == 0

    def test_job_reset_bumps_epoch_and_forces_full_refresh(self):
        observation = self._observation()
        cache = GraphCache()
        cache.features(observation)
        observation.job_dags[0].reset()
        cache.features(observation)
        assert cache.num_full_refreshes == 2

    def test_touch_log_compaction_forces_full_refresh(self):
        observation = self._observation()
        cache = GraphCache()
        cache.features(observation)
        job = observation.job_dags[0]
        epoch = job.feature_epoch
        node = job.nodes[0]
        for _ in range(job._touch_log_limit + 1):
            job.log_feature_touch(node)
        assert job.feature_epoch == epoch + 1
        cache.features(observation)
        assert cache.num_full_refreshes == 2
        # And the post-compaction state still serves deltas.
        cache.features(observation)
        assert cache.num_delta_refreshes == 1

    def test_structure_rebuild_drops_marks_and_buffers(self):
        import dataclasses

        env, observation = make_tpch_env(num_jobs=2, seed=9)
        cache = GraphCache()
        cache.features(observation)
        shrunk = dataclasses.replace(
            observation,
            job_dags=observation.job_dags[:1],
            schedulable_nodes=[
                node for node in observation.schedulable_nodes
                if node.job is observation.job_dags[0]
            ],
        )
        features = cache.features(shrunk)
        assert cache.num_rebuilds == 2
        assert cache.num_full_refreshes == 2
        scratch = build_graph_features(shrunk)
        assert np.array_equal(features.node_features, scratch.node_features)

    def test_reuse_buffers_hands_out_the_arena(self):
        observation = self._observation()
        cache = GraphCache()
        first = cache.features(observation, reuse_buffers=True)
        second = cache.features(observation, reuse_buffers=True)
        assert first.node_features is second.node_features
        assert first.schedulable_mask is second.schedulable_mask
        # The default copies out (safe to hand to autograd / keep across steps).
        third = cache.features(observation)
        assert third.node_features is not second.node_features


class TestSessionTouchLogging:
    def test_refresh_counters_logs_only_changed_nodes(self):
        job = _chain_job()
        by_id = {node.node_id: node for node in job.nodes}
        payload = {
            "nodes": [
                {"node_id": 0, "num_finished_tasks": 1, "num_running_tasks": 0,
                 "next_task_index": 1},
                {"node_id": 1, "num_finished_tasks": 0, "num_running_tasks": 0,
                 "next_task_index": 0},
                {"node_id": 2, "num_finished_tasks": 0, "num_running_tasks": 0,
                 "next_task_index": 0},
            ]
        }
        before = job.drain_feature_touches(0)[0]
        SessionState._refresh_counters(by_id, payload)
        position, touched = job.drain_feature_touches(before)
        assert touched == [by_id[0]]
        # An identical snapshot logs nothing (next_task_index feeds no column).
        payload["nodes"][0]["next_task_index"] = 2
        SessionState._refresh_counters(by_id, payload)
        assert job.drain_feature_touches(position)[1] == []


class TestKernelBackends:
    def test_workspace_reuses_until_shape_changes(self):
        workspace = Workspace()
        a = workspace.get("x", (4, 3))
        assert workspace.get("x", (4, 3)) is a
        b = workspace.get("x", (5, 3))
        assert b is not a and b.shape == (5, 3)
        assert workspace.num_buffers == 1
        assert workspace.nbytes == b.nbytes
        workspace.clear()
        assert workspace.num_buffers == 0

    def test_get_backend_names_and_fallback(self):
        assert set(kernel_backend_names()) == {"numpy", "numba"}
        assert get_backend("numpy").name == "numpy"
        backend = get_backend("numba")
        if numba_available():
            assert backend.name == "numba" and backend.compiled
        else:
            # The optional dependency silently degrades to the reference.
            assert backend.name == "numpy" and not backend.compiled
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_gather_segment_sum_matches_add_at(self):
        rng = np.random.default_rng(0)
        messages = rng.normal(size=(7, 5))
        rows = rng.integers(0, 7, size=12)
        segments = rng.integers(0, 4, size=12)
        expected = np.zeros((4, 5))
        np.add.at(expected, segments, messages[rows])
        for name in kernel_backend_names():
            out = np.empty((4, 5))
            scratch = np.empty((12, 5))
            got = get_backend(name).gather_segment_sum(
                messages, rows, segments, out, scratch
            )
            assert np.array_equal(got, expected), name

    def test_masked_log_softmax_backends_agree(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=9)
        mask = np.zeros(9, dtype=bool)
        mask[[1, 4, 7]] = True
        reference = get_backend("numpy").masked_log_softmax(logits, mask)
        other = get_backend("numba").masked_log_softmax(logits, mask)
        assert np.allclose(reference, other, atol=1e-12)
        assert np.argmax(reference) == np.argmax(other)

    def test_mlp_forward_bit_identical_to_tensor_mlp(self):
        rng = np.random.default_rng(2)
        mlp = MLP(6, 3, rng, hidden_sizes=(8, 4))
        inputs = rng.normal(size=(11, 6))
        fast = mlp_forward(mlp, inputs, Workspace(), "t")
        assert np.array_equal(fast, mlp(Tensor(inputs)).data)

    def test_leaky_relu_inplace_bit_identical(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=(9, 5))
        expected = values * np.where(values > 0, 1.0, 0.2)
        got = values.copy()
        leaky_relu_inplace(got, 0.2, Workspace(), "t")
        assert np.array_equal(got, expected)


class TestAgentDataPath:
    def test_fast_act_matches_tensor_backend_actions(self):
        env, observation = make_tpch_env(num_jobs=2, seed=6)
        fast = make_decima_agent(total_executors=8, kernel_backend="numpy")
        oracle = make_decima_agent(total_executors=8, kernel_backend="tensor")
        for _ in range(20):
            a, _ = fast.act(observation, greedy=True)
            b, _ = oracle.act(observation, greedy=True)
            assert (a is None) == (b is None)
            if a is None:
                break
            assert a.node is b.node and a.parallelism_limit == b.parallelism_limit
            observation, _, done = env.step(a)
            if done:
                break
        assert fast.stage_timings.num_steps > 0
        snapshot = fast.stage_timings.snapshot()
        assert set(snapshot["stages"]) == {
            "features", "propagation", "policy", "sampling"
        }

    def test_unknown_kernel_backend_rejected(self):
        with pytest.raises(ValueError, match="kernel backend"):
            make_decima_agent(kernel_backend="cuda")
