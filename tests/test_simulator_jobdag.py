"""Unit tests for the job DAG / stage / task model."""

import numpy as np
import pytest

from repro.simulator import JobDAG, Node, critical_path_value, topological_order
from repro.workloads import chain_job, fork_join_job


def small_diamond():
    nodes = [
        Node(0, num_tasks=2, task_duration=1.0, name="src"),
        Node(1, num_tasks=3, task_duration=2.0, name="left"),
        Node(2, num_tasks=4, task_duration=1.0, name="right"),
        Node(3, num_tasks=1, task_duration=5.0, name="sink"),
    ]
    edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
    return JobDAG(nodes=nodes, edges=edges, name="diamond")


class TestNode:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Node(0, num_tasks=0, task_duration=1.0)
        with pytest.raises(ValueError):
            Node(0, num_tasks=1, task_duration=0.0)

    def test_total_and_remaining_work(self):
        node = Node(0, num_tasks=4, task_duration=2.0)
        assert node.total_work == 8.0
        assert node.remaining_work == 8.0
        assert node.remaining_tasks == 4

    def test_dispatch_and_finish_lifecycle(self):
        node = Node(0, num_tasks=2, task_duration=1.0)
        task = node.dispatch_task()
        assert node.num_running_tasks == 1
        assert node.remaining_tasks == 1
        node.finish_task(task, wall_time=3.0)
        assert node.num_finished_tasks == 1
        assert not node.completed
        second = node.dispatch_task()
        assert node.saturated
        with pytest.raises(RuntimeError):
            node.dispatch_task()
        node.finish_task(second, wall_time=5.0)
        assert node.completed
        assert node.completion_time == 5.0

    def test_reset_clears_state(self):
        node = Node(0, num_tasks=1, task_duration=1.0)
        task = node.dispatch_task()
        node.finish_task(task, wall_time=1.0)
        node.reset()
        assert node.num_finished_tasks == 0
        assert node.remaining_tasks == 1
        assert node.completion_time == -1.0


class TestJobDAG:
    def test_parent_child_wiring(self):
        job = small_diamond()
        by_name = {node.name: node for node in job.nodes}
        assert by_name["sink"].parents == [by_name["left"], by_name["right"]]
        assert by_name["src"].children == [by_name["left"], by_name["right"]]

    def test_runnable_nodes_initially_roots(self):
        job = small_diamond()
        assert [node.name for node in job.runnable_nodes] == ["src"]

    def test_total_work(self):
        job = small_diamond()
        assert job.total_work == pytest.approx(2 * 1 + 3 * 2 + 4 * 1 + 1 * 5)

    def test_cycle_detection(self):
        nodes = [Node(0, 1, 1.0), Node(1, 1, 1.0)]
        with pytest.raises(ValueError):
            JobDAG(nodes=nodes, edges=[(0, 1), (1, 0)])

    def test_unknown_edge_raises(self):
        with pytest.raises(ValueError):
            JobDAG(nodes=[Node(0, 1, 1.0)], edges=[(0, 5)])

    def test_duplicate_node_ids_raise(self):
        with pytest.raises(ValueError):
            JobDAG(nodes=[Node(0, 1, 1.0), Node(0, 1, 1.0)], edges=[])

    def test_empty_job_raises(self):
        with pytest.raises(ValueError):
            JobDAG(nodes=[], edges=[])

    def test_adjacency_matrix(self):
        job = small_diamond()
        adjacency = job.adjacency_matrix
        assert adjacency.shape == (4, 4)
        assert adjacency[0, 1] == 1.0 and adjacency[0, 2] == 1.0
        assert adjacency.sum() == len(job.edges)

    def test_completion_duration_requires_completion(self):
        job = small_diamond()
        with pytest.raises(RuntimeError):
            job.completion_duration()
        job.completion_time = 12.0
        job.arrival_time = 2.0
        assert job.completion_duration() == 10.0

    def test_unique_job_ids(self):
        a, b = chain_job(2), chain_job(2)
        assert a.job_id != b.job_id

    def test_reset(self):
        job = small_diamond()
        node = job.runnable_nodes[0]
        task = node.dispatch_task()
        node.finish_task(task, 1.0)
        job.completion_time = 50.0
        job.reset()
        assert job.completion_time == -1.0
        assert all(n.num_finished_tasks == 0 for n in job.nodes)


class TestGraphAlgorithms:
    def test_topological_order_respects_edges(self):
        job = small_diamond()
        order = topological_order(job.nodes)
        positions = {id(node): i for i, node in enumerate(order)}
        for node in job.nodes:
            for child in node.children:
                assert positions[id(node)] < positions[id(child)]

    def test_critical_path_of_chain(self):
        job = chain_job(4, num_tasks=2, task_duration=3.0)
        assert job.critical_path() == pytest.approx(4 * 2 * 3.0)

    def test_critical_path_takes_max_branch(self):
        job = small_diamond()
        # src(2) + left(6) + sink(5) = 13 is the heaviest path.
        assert job.critical_path() == pytest.approx(13.0)

    def test_critical_path_value_leaf(self):
        job = small_diamond()
        sink = job.nodes[3]
        assert critical_path_value(sink) == pytest.approx(5.0)

    def test_fork_join_structure(self):
        job = fork_join_job(3, tasks_per_branch=2, task_duration=1.0)
        assert job.num_nodes == 5
        sink = job.nodes[-1]
        assert len(sink.parents) == 3
