"""Tests for the trace format, the recorder and the replay engine.

Covers the format contract (canonical encoding, versioning, digest
validation), recording through the simulator/runner/agent instrumentation
seams, both replay modes, and first-divergence reporting on injected drift.
"""

import dataclasses
import json

import numpy as np
import pytest

from _helpers import make_decima_agent, make_tpch_env
from repro.verify import (
    TRACE_VERSION,
    DecisionRecord,
    DivergenceReport,
    EpisodeTrace,
    ReplayEngine,
    TraceHeader,
    TraceRecorder,
    first_divergence,
    logits_digest,
    observation_fingerprint,
    read_trace,
    record_scenario_trace,
    rng_state_digest,
    write_trace,
)
from repro.verify.trace import trace_from_lines

SMALL = dict(num_jobs=3, num_executors=8)


def small_trace(scenario="tpch_batched", scheduler="fifo", seed=0, **kwargs):
    return record_scenario_trace(scenario, scheduler=scheduler, seed=seed,
                                 **{**SMALL, **kwargs})


# ------------------------------------------------------------------ fingerprints
class TestFingerprints:
    def test_observation_fingerprint_is_stable_across_runs(self):
        fingerprints = []
        for _ in range(2):
            _, observation = make_tpch_env(num_jobs=2, seed=3)
            fingerprints.append(observation_fingerprint(observation))
        assert fingerprints[0] == fingerprints[1]

    def test_observation_fingerprint_sees_task_progress(self):
        from repro.simulator.environment import Action

        env, observation = make_tpch_env(num_jobs=2, seed=3)
        before = observation_fingerprint(observation)
        node = observation.schedulable_nodes[0]
        env.step(Action(node=node, parallelism_limit=2))
        assert observation_fingerprint(env.observe()) != before

    def test_logits_digest_absorbs_float_noise_and_negative_zero(self):
        logits = np.array([0.123456781, -0.0, 2.5])
        wiggled = np.array([0.123456779, 0.0, 2.5])
        assert logits_digest(logits) == logits_digest(wiggled)
        assert logits_digest(logits) != logits_digest(logits + 1e-3)

    def test_rng_state_digest_tracks_consumption(self):
        rng = np.random.default_rng(0)
        first = rng_state_digest(rng)
        assert rng_state_digest(np.random.default_rng(0)) == first
        rng.random()
        assert rng_state_digest(rng) != first


# ---------------------------------------------------------------- trace format
class TestTraceFormat:
    def test_round_trip_is_lossless(self, tmp_path):
        trace = small_trace()
        path = write_trace(trace, tmp_path / "episode.trace.jsonl")
        back = read_trace(path)
        assert back.header == trace.header
        assert back.decisions == trace.decisions
        assert back.events == trace.events
        assert back.rng_checkpoints == trace.rng_checkpoints
        assert back.digest == trace.digest

    def test_two_independent_recordings_are_byte_identical(self):
        first, second = small_trace(), small_trace()
        assert first.to_lines() == second.to_lines()
        assert first.digest == second.digest

    def test_tampered_file_fails_digest_validation(self, tmp_path):
        path = write_trace(small_trace(), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        victim = json.loads(lines[1])
        if "time" in victim:
            victim["time"] = victim["time"] + 1.0
        lines[1] = json.dumps(victim, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="digest mismatch"):
            read_trace(path)
        # Validation is opt-out for forensic inspection of broken traces.
        assert read_trace(path, verify_digest=False).num_decisions > 0

    def test_truncated_file_rejected(self, tmp_path):
        path = write_trace(small_trace(), tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="no end record"):
            read_trace(path)

    def test_unsupported_version_rejected(self):
        header = json.dumps(
            {"kind": "header", "version": TRACE_VERSION + 1, "scenario": "x",
             "scheduler": "fifo", "seed": 0}
        )
        with pytest.raises(ValueError, match="version"):
            trace_from_lines([header, json.dumps({"kind": "end", "digest": "x"})])

    def test_header_must_come_first(self):
        with pytest.raises(ValueError, match="must start with a header"):
            trace_from_lines([json.dumps({"kind": "end", "digest": "x"})])

    def test_non_json_line_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            trace_from_lines(["this is not json"])


# ------------------------------------------------------------------- recording
class TestRecorder:
    def test_trace_contains_events_decisions_and_checkpoints(self):
        trace = small_trace(scenario="tpch_poisson")
        assert trace.num_decisions > 10
        kinds = {event.event for event in trace.events}
        assert "job_arrival" in kinds and "task_finish" in kinds
        assert trace.rng_checkpoints  # at least the episode-end checkpoint
        assert trace.summary["num_decisions"] == trace.num_decisions
        assert trace.summary["num_finished"] >= 1

    def test_churn_events_are_recorded(self):
        from repro.schedulers import make_scheduler
        from repro.simulator import SchedulingEnvironment, SimulatorConfig
        from repro.simulator.environment import ExecutorChurnEvent
        from repro.workloads import batched_arrivals, sample_tpch_jobs

        config = SimulatorConfig(
            num_executors=4,
            seed=0,
            churn_events=(
                ExecutorChurnEvent(time=5.0, kind="executor_removed", count=1),
                ExecutorChurnEvent(time=10.0, kind="executor_added", count=2),
            ),
        )
        jobs = batched_arrivals(
            sample_tpch_jobs(2, np.random.default_rng(0), sizes=(2.0, 5.0))
        )
        header = TraceHeader(scenario="adhoc_churn", scheduler="fifo", seed=0)
        trace = TraceRecorder(header).record(
            SchedulingEnvironment(config), make_scheduler("fifo", config), jobs, seed=0
        )
        kinds = [event.event for event in trace.events]
        assert "executor_removed" in kinds and "executor_added" in kinds
        counts = {e.event: e.count for e in trace.events if e.count is not None}
        assert counts == {"executor_removed": 1, "executor_added": 2}

    def test_decima_traces_carry_logits_digests(self):
        trace = small_trace(scheduler="decima")
        assert all(d.logits is not None for d in trace.decisions)

    def test_heuristic_traces_have_no_logits(self):
        trace = small_trace(scheduler="fifo")
        assert all(d.logits is None for d in trace.decisions)

    def test_recording_does_not_leak_instrumentation(self):
        from repro.workloads import batched_arrivals, sample_tpch_jobs

        env, _ = make_tpch_env(num_jobs=2, seed=0)
        agent = make_decima_agent()
        header = TraceHeader(scenario="adhoc", scheduler="decima", seed=0)
        rng = np.random.default_rng(0)
        job_list = batched_arrivals(sample_tpch_jobs(2, rng, sizes=(2.0,)))
        TraceRecorder(header).record(env, agent, job_list, seed=0, max_decisions=10)
        assert env.event_listeners == []
        assert agent.logits_tap is None

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            record_scenario_trace("not_a_scenario")

    def test_size_overrides_rejected_for_adhoc_specs(self):
        from repro.experiments.scenarios import get_scenario

        spec = get_scenario("tpch_batched", num_jobs=2, num_executors=4)
        with pytest.raises(ValueError, match="registry scenario names"):
            record_scenario_trace(spec, num_jobs=5)

    def test_max_decisions_truncates(self):
        trace = small_trace(max_decisions=7)
        assert trace.num_decisions == 7

    def test_no_duplicate_rng_checkpoint_at_interval_boundary(self):
        # 25 decisions == the default checkpoint interval: the episode-end
        # checkpoint must not duplicate the in-loop one at step 24.
        trace = small_trace(max_decisions=25)
        steps = [checkpoint.step for checkpoint in trace.rng_checkpoints]
        assert steps == sorted(set(steps))
        assert steps[-1] == 24


# --------------------------------------------------------------------- replay
class TestReplayEngine:
    @pytest.mark.parametrize("mode", ["rerun", "apply"])
    def test_faithful_replay_reports_ok(self, mode):
        trace = small_trace(scenario="tpch_poisson")
        report = ReplayEngine(mode).replay(trace)
        assert report.ok, report.describe()
        assert report.num_decisions == trace.num_decisions

    @pytest.mark.parametrize("mode", ["rerun", "apply"])
    def test_decima_replay_round_trips(self, mode):
        trace = small_trace(scheduler="decima", max_decisions=25)
        report = ReplayEngine(mode).replay(trace)
        assert report.ok, report.describe()

    def test_injected_decision_drift_is_located(self):
        trace = small_trace()
        victim = trace.decisions[5]
        trace.decisions[5] = dataclasses.replace(victim, limit=(victim.limit or 0) + 1)
        report = ReplayEngine("rerun").replay(trace)
        assert not report.ok
        assert report.divergence.kind == "decision"
        assert report.divergence.step == 5
        assert report.divergence.field == "limit"
        # Full triage context: both records and the observation fingerprint.
        assert report.divergence.expected_fingerprint
        assert "divergence at decision #5" in report.describe()

    def test_injected_fingerprint_drift_caught_by_apply_mode(self):
        trace = small_trace()
        victim = trace.decisions[3]
        trace.decisions[3] = dataclasses.replace(victim, obs_fingerprint="bogus")
        report = ReplayEngine("apply").replay(trace)
        assert not report.ok
        assert report.divergence.kind == "fingerprint"
        assert report.divergence.step == 3
        assert report.divergence.actual_fingerprint != "bogus"

    def test_apply_mode_rejects_unknown_job(self):
        trace = small_trace()
        victim = trace.decisions[0]
        trace.decisions[0] = dataclasses.replace(victim, job="no-such-job")
        report = ReplayEngine("apply").replay(trace)
        assert not report.ok
        assert "does not exist" in report.divergence.message

    def test_truncated_stream_reports_length_divergence(self):
        trace = small_trace()
        del trace.decisions[-3:]
        report = ReplayEngine("rerun").replay(trace)
        assert not report.ok
        assert report.divergence.kind in ("length", "event", "rng")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown replay mode"):
            ReplayEngine("backwards")


class TestFirstDivergence:
    def records(self, n=4):
        return [
            DecisionRecord(step=i, wall_time=float(i), obs_fingerprint=f"fp{i}",
                           job="j", node=i, limit=2, reward=-0.5)
            for i in range(n)
        ]

    def trace_of(self, decisions):
        return EpisodeTrace(
            header=TraceHeader(scenario="x", scheduler="fifo", seed=0),
            decisions=decisions,
        )

    def test_identical_traces_have_no_divergence(self):
        assert first_divergence(self.trace_of(self.records()),
                                self.trace_of(self.records())) is None

    def test_field_mismatch_reported_with_step_and_field(self):
        lhs, rhs = self.records(), self.records()
        rhs[2] = dataclasses.replace(rhs[2], node=99)
        report = first_divergence(self.trace_of(lhs), self.trace_of(rhs))
        assert isinstance(report, DivergenceReport)
        assert (report.kind, report.step, report.field) == ("decision", 2, "node")

    def test_length_mismatch_reported_after_common_prefix(self):
        lhs, rhs = self.records(4), self.records(3)
        report = first_divergence(self.trace_of(lhs), self.trace_of(rhs))
        assert (report.kind, report.step) == ("length", 3)
        # The surplus record belongs to the expected (longer) stream.
        assert report.expected is not None and report.actual is None

    def test_length_mismatch_attributes_surplus_to_actual_stream(self):
        lhs, rhs = self.records(3), self.records(4)
        report = first_divergence(self.trace_of(lhs), self.trace_of(rhs))
        assert (report.kind, report.step) == ("length", 3)
        assert report.actual is not None and report.expected is None

    def test_rng_checkpoint_drift_reported(self):
        from repro.verify import RngCheckpoint

        lhs, rhs = self.trace_of(self.records()), self.trace_of(self.records())
        lhs.rng_checkpoints = [RngCheckpoint(step=3, digest="aaa")]
        rhs.rng_checkpoints = [RngCheckpoint(step=3, digest="bbb")]
        report = first_divergence(lhs, rhs)
        assert report.kind == "rng"
        assert "random numbers" in report.message
