"""Unit tests for the reverse-mode autodiff engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, concat, gather_rows, scatter_add_rows, segment_sum, stack


def numerical_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of a numpy array."""
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = fn(x)
        x[idx] = orig - eps
        minus = fn(x)
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestTensorBasics:
    def test_construction_defaults(self):
        t = Tensor([1.0, 2.0])
        assert t.shape == (2,)
        assert not t.requires_grad
        assert t.grad is None

    def test_numpy_and_item(self):
        t = Tensor(3.5)
        assert t.item() == pytest.approx(3.5)
        assert isinstance(t.numpy(), np.ndarray)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        c = (b * 3.0).sum()
        c.backward()
        assert a.grad is None

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        assert a.grad is not None
        a.zero_grad()
        assert a.grad is None


class TestArithmeticForward:
    def test_add_sub_mul_div(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0])
        assert np.allclose((a + b).data, [4, 6])
        assert np.allclose((a - b).data, [-2, -2])
        assert np.allclose((a * b).data, [3, 8])
        assert np.allclose((a / b).data, [1 / 3, 0.5])

    def test_scalar_operands(self):
        a = Tensor([1.0, 2.0])
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((2 * a).data, [2, 4])
        assert np.allclose((1 - a).data, [0, -1])
        assert np.allclose((4 / a).data, [4, 2])

    def test_pow_and_neg(self):
        a = Tensor([2.0, 3.0])
        assert np.allclose((a ** 2).data, [4, 9])
        assert np.allclose((-a).data, [-2, -3])

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        b = Tensor(np.arange(12.0).reshape(3, 4))
        assert np.allclose((a @ b).data, a.data @ b.data)


class TestGradients:
    def test_add_broadcast_gradient(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones((1, 2)), requires_grad=True)
        out = (a + b).sum()
        out.backward()
        assert np.allclose(a.grad, np.ones((3, 2)))
        assert np.allclose(b.grad, np.full((1, 2), 3.0))

    def test_mul_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5, 7])
        assert np.allclose(b.grad, [2, 3])

    def test_matmul_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        def loss_a(x):
            return float(((x @ b_data) ** 2).sum())

        def loss_b(x):
            return float(((a_data @ x) ** 2).sum())

        assert np.allclose(a.grad, numerical_gradient(loss_a, a_data.copy()), atol=1e-4)
        assert np.allclose(b.grad, numerical_gradient(loss_b, b_data.copy()), atol=1e-4)

    def test_elementwise_gradients_match_numerical(self):
        rng = np.random.default_rng(1)
        x_data = rng.uniform(0.5, 2.0, size=(4,))

        cases = {
            "exp": (lambda t: t.exp().sum(), lambda x: float(np.exp(x).sum())),
            "log": (lambda t: t.log().sum(), lambda x: float(np.log(x).sum())),
            "tanh": (lambda t: t.tanh().sum(), lambda x: float(np.tanh(x).sum())),
            "sigmoid": (
                lambda t: t.sigmoid().sum(),
                lambda x: float((1 / (1 + np.exp(-x))).sum()),
            ),
        }
        for name, (tensor_fn, numpy_fn) in cases.items():
            x = Tensor(x_data.copy(), requires_grad=True)
            tensor_fn(x).backward()
            numeric = numerical_gradient(numpy_fn, x_data.copy())
            assert np.allclose(x.grad, numeric, atol=1e-5), name

    def test_leaky_relu_gradient(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        x.leaky_relu(0.1).sum().backward()
        assert np.allclose(x.grad, [0.1, 1.0])

    def test_relu_gradient(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_division_gradient(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_reused_tensor_accumulates_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (a * 3 + a * 2).sum()
        out.backward()
        assert np.allclose(a.grad, [5.0, 5.0])

    def test_repeated_backward_accumulates(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        assert np.allclose(a.grad, [4.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        assert np.allclose(a.grad, np.full(4, 0.25))

    def test_max_gradient_spreads_over_ties(self):
        a = Tensor([1.0, 3.0, 3.0], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        out = a.max(axis=1)
        assert np.allclose(out.data, [5.0, 7.0])
        out.sum().backward()
        assert np.allclose(a.grad, [[0, 1], [1, 0]])

    def test_reshape_and_transpose(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.reshape(3, 2).T
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_getitem_gradient(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[np.array([0, 2, 2])].sum().backward()
        assert np.allclose(a.grad, [1, 0, 2, 0, 0])


class TestJoins:
    def test_concat_forward_and_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(2 * np.ones((3, 2)), requires_grad=True)
        out = concat([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 3).sum().backward()
        assert np.allclose(a.grad, np.full((2, 2), 3.0))
        assert np.allclose(b.grad, np.full((3, 2), 3.0))

    def test_stack(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_gather_rows(self):
        a = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        out = gather_rows(a, [2, 0])
        assert np.allclose(out.data, [[4, 5], [0, 1]])
        out.sum().backward()
        assert np.allclose(a.grad, [[1, 1], [0, 0], [1, 1]])

    def test_gather_rows_duplicate_indices_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(4, 3))
        weights = rng.normal(size=(3, 3))
        rows = [1, 1, 3]

        a = Tensor(base.copy(), requires_grad=True)
        (gather_rows(a, rows) * Tensor(weights)).sum().backward()

        def loss(x):
            return float((x[rows] * weights).sum())

        assert np.allclose(a.grad, numerical_gradient(loss, base.copy()))


class TestScatterAddRows:
    def test_forward_accumulates_duplicates(self):
        base = Tensor(np.zeros((3, 2)))
        updates = Tensor(np.array([[1.0, 2.0], [10.0, 20.0], [3.0, 4.0]]))
        out = scatter_add_rows(base, [2, 0, 2], updates)
        assert np.allclose(out.data, [[10, 20], [0, 0], [4, 6]])

    def test_out_of_place(self):
        base = Tensor(np.zeros((2, 2)))
        scatter_add_rows(base, [0], Tensor(np.ones((1, 2))))
        assert np.allclose(base.data, 0.0)

    def test_row_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            scatter_add_rows(Tensor(np.zeros((3, 2))), [0, 1], Tensor(np.ones((3, 2))))

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=(4, 2))
        updates = rng.normal(size=(3, 2))
        weights = rng.normal(size=(4, 2))
        rows = [3, 0, 3]

        b = Tensor(base.copy(), requires_grad=True)
        u = Tensor(updates.copy(), requires_grad=True)
        (scatter_add_rows(b, rows, u) * Tensor(weights)).sum().backward()

        def loss_base(x):
            out = x.copy()
            np.add.at(out, rows, updates)
            return float((out * weights).sum())

        def loss_updates(x):
            out = base.copy()
            np.add.at(out, rows, x)
            return float((out * weights).sum())

        assert np.allclose(b.grad, numerical_gradient(loss_base, base.copy()))
        assert np.allclose(u.grad, numerical_gradient(loss_updates, updates.copy()))


class TestSegmentSum:
    def test_forward(self):
        x = Tensor(np.arange(8.0).reshape(4, 2))
        out = segment_sum(x, [0, 0, 1, 1], 2)
        assert np.allclose(out.data, [[2, 4], [10, 12]])

    def test_empty_segment(self):
        x = Tensor(np.ones((2, 3)))
        out = segment_sum(x, [2, 2], 3)
        assert np.allclose(out.data[0], 0)
        assert np.allclose(out.data[2], 2)

    def test_gradient(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = segment_sum(x, [0, 1, 1], 2)
        (out * Tensor([[1.0, 1.0], [5.0, 5.0]])).sum().backward()
        assert np.allclose(x.grad, [[1, 1], [5, 5], [5, 5]])

    def test_mismatched_ids_raise(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((3, 2))), [0, 1], 2)
