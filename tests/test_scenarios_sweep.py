"""Tests for the scenario registry and the parallel sweep engine.

The two load-bearing properties are determinism (a cell is a pure function of
its coordinates) and worker-count invariance (the aggregates — and the JSON
artifacts written from them — are byte-identical whether the sweep ran
in-process or on a worker pool).
"""

import json
import pickle

import numpy as np
import pytest

from repro.core.agent import DecimaAgent
from repro.experiments import (
    SCHEDULER_NAMES,
    SweepCell,
    SweepWorkerPool,
    aggregate_results,
    get_scenario,
    make_scheduler,
    run_cell,
    run_sweep,
    scenario_names,
    scenario_registry,
    write_sweep_artifacts,
)
from repro.experiments.sweep import _bootstrap_ci
from repro.schedulers.base import Scheduler

TINY = dict(num_jobs=2, num_executors=6)


class TestScenarioRegistry:
    def test_registry_has_at_least_eight_scenarios(self):
        registry = scenario_registry()
        assert len(registry) >= 8
        # The matrix the paper's evaluation needs, by name.
        for required in (
            "tpch_batched",
            "tpch_poisson",
            "tpch_bursty",
            "tpch_pareto",
            "hetero_executors",
            "multi_resource_packing",
            "executor_churn",
            "straggler_cluster",
        ):
            assert required in registry

    def test_every_scenario_builds_a_deterministic_workload(self):
        for name, spec in scenario_registry(**TINY).items():
            first = spec.build_jobs(np.random.default_rng(7))
            second = spec.build_jobs(np.random.default_rng(7))
            assert [j.name for j in first] == [j.name for j in second], name
            assert [j.arrival_time for j in first] == [j.arrival_time for j in second], name
            assert len(first) == spec.num_jobs

    def test_size_overrides_flow_through(self):
        registry = scenario_registry(num_jobs=3, num_executors=9)
        for name, spec in registry.items():
            assert spec.num_jobs == 3, name
            # multi_resource_config distributes executors over classes but the
            # total must match the override.
            assert spec.simulator.num_executors == 9, name
            assert len(spec.build_jobs(np.random.default_rng(0))) == 3

    def test_build_config_reseeds_without_mutating_the_spec(self):
        spec = get_scenario("tpch_batched", **TINY)
        config = spec.build_config(seed=42)
        assert config.seed == 42
        assert spec.simulator.seed != 42 or spec.build_config(seed=1).seed == 1

    def test_churn_scenario_carries_events_stragglers_carry_inflation(self):
        churn = get_scenario("executor_churn", **TINY)
        assert churn.simulator.churn_events
        kinds = {event.kind for event in churn.simulator.churn_events}
        assert kinds == {"executor_added", "executor_removed"}
        straggler = get_scenario("straggler_cluster", **TINY)
        assert straggler.simulator.duration.straggler_probability > 0

    def test_specs_are_picklable(self):
        for name, spec in scenario_registry(**TINY).items():
            clone = pickle.loads(pickle.dumps(spec))
            assert clone.name == name

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="tpch_batched"):
            get_scenario("nope")

    def test_scenario_names_order_is_stable(self):
        assert scenario_names() == tuple(scenario_registry().keys())


class TestSchedulerFactory:
    def test_all_names_build_schedulers(self):
        config = get_scenario("tpch_batched", **TINY).build_config(seed=0)
        for name in SCHEDULER_NAMES:
            assert isinstance(make_scheduler(name, config), Scheduler)

    def test_decima_enables_class_head_on_multi_class_clusters(self):
        hetero = get_scenario("hetero_executors", **TINY).build_config(seed=0)
        agent = make_scheduler("decima", hetero)
        assert isinstance(agent, DecimaAgent)
        assert agent.config.multi_resource
        standalone = get_scenario("tpch_batched", **TINY).build_config(seed=0)
        assert not make_scheduler("decima", standalone).config.multi_resource

    def test_unknown_scheduler_raises(self):
        config = get_scenario("tpch_batched", **TINY).build_config(seed=0)
        with pytest.raises(KeyError, match="fifo"):
            make_scheduler("nope", config)


class TestRunCell:
    def test_cell_is_deterministic(self):
        cell = SweepCell(scenario="tpch_poisson", scheduler="fifo", seed=1)
        first = run_cell(cell, **TINY)
        second = run_cell(cell, **TINY)
        assert first == second
        assert first.num_finished + first.num_unfinished >= TINY["num_jobs"]

    def test_same_seed_gives_same_workload_to_every_scheduler(self):
        fifo = run_cell(SweepCell("tpch_batched", "fifo", 0), **TINY)
        fair = run_cell(SweepCell("tpch_batched", "fair", 0), **TINY)
        # Same jobs, different schedules: job counts match even though the
        # completion times differ.
        assert fifo.num_finished + fifo.num_unfinished == fair.num_finished + fair.num_unfinished

    def test_average_jct_none_without_finished_jobs(self):
        from repro.experiments.sweep import CellResult

        empty = CellResult(
            scenario="s",
            scheduler="x",
            seed=0,
            num_finished=0,
            num_unfinished=2,
            jcts=(),
            makespan=None,
            wall_time=1.0,
            total_reward=0.0,
            num_actions=3,
        )
        assert empty.average_jct is None


class TestSweepEngine:
    SCENARIOS = ["tpch_batched", "executor_churn"]
    SCHEDULERS = ["fifo", "fair"]
    SEEDS = [0, 1]

    def test_serial_and_pooled_sweeps_agree_and_artifacts_are_byte_identical(
        self, tmp_path
    ):
        serial_dir = tmp_path / "serial"
        pooled_dir = tmp_path / "pooled"
        serial = run_sweep(
            self.SCENARIOS, self.SCHEDULERS, self.SEEDS,
            num_workers=1, out_dir=serial_dir, **TINY,
        )
        pooled = run_sweep(
            self.SCENARIOS, self.SCHEDULERS, self.SEEDS,
            num_workers=2, out_dir=pooled_dir, **TINY,
        )
        assert serial == pooled
        for scenario in self.SCENARIOS:
            name = f"SWEEP_{scenario}.json"
            assert (serial_dir / name).read_bytes() == (pooled_dir / name).read_bytes()

    def test_artifact_contents(self, tmp_path):
        aggregates = run_sweep(
            ["straggler_cluster"], ["fifo"], [0, 1], num_workers=1,
            out_dir=tmp_path, **TINY,
        )
        payload = json.loads((tmp_path / "SWEEP_straggler_cluster.json").read_text())
        assert payload == aggregates["straggler_cluster"]
        stats = payload["schedulers"]["fifo"]
        assert stats["num_seeds"] == 2
        assert stats["mean_jct"] is not None and stats["mean_jct"] > 0
        low, high = stats["jct_ci95"]
        assert low <= stats["mean_jct"] <= high or low == high
        assert stats["p95_jct"] >= 0
        assert len(stats["per_seed"]) == 2
        assert payload["seeds"] == [0, 1]

    def test_worker_pool_reassembles_cell_order(self):
        cells = [
            SweepCell("tpch_batched", "fifo", seed) for seed in range(3)
        ] + [SweepCell("tpch_batched", "fair", seed) for seed in range(3)]
        with SweepWorkerPool(num_workers=3, **TINY) as pool:
            results = pool.run_cells(cells)
        assert [(r.scenario, r.scheduler, r.seed) for r in results] == [
            (c.scenario, c.scheduler, c.seed) for c in cells
        ]

    def test_worker_pool_surfaces_worker_errors(self):
        with SweepWorkerPool(num_workers=2, **TINY) as pool:
            with pytest.raises(RuntimeError, match="sweep worker"):
                pool.run_cells([SweepCell("no_such_scenario", "fifo", 0)])
            pool.close()
            with pytest.raises(RuntimeError, match="closed"):
                pool.run_cells([])

    def test_validation_errors(self):
        with pytest.raises(KeyError):
            run_sweep(["nope"], ["fifo"], [0], **TINY)
        with pytest.raises(KeyError):
            run_sweep(["tpch_batched"], ["nope"], [0], **TINY)
        with pytest.raises(ValueError):
            run_sweep(["tpch_batched"], ["fifo"], [], **TINY)
        with pytest.raises(ValueError, match="scenario"):
            run_sweep([], ["fifo"], [0], **TINY)
        with pytest.raises(ValueError, match="scheduler"):
            run_sweep(["tpch_batched"], [], [0], **TINY)

    def test_bootstrap_ci_is_deterministic_and_ordered(self):
        values = [10.0, 12.0, 9.0, 14.0, 11.0]
        first = _bootstrap_ci(values, np.random.default_rng(0))
        second = _bootstrap_ci(values, np.random.default_rng(0))
        assert first == second
        assert first[0] <= first[1]
        assert _bootstrap_ci([], np.random.default_rng(0)) is None
        assert _bootstrap_ci([5.0], np.random.default_rng(0)) == [5.0, 5.0]

    def test_aggregate_handles_missing_rows(self):
        aggregates = aggregate_results(
            [], ["tpch_batched"], ["fifo"], **TINY
        )
        stats = aggregates["tpch_batched"]["schedulers"]["fifo"]
        assert stats["num_seeds"] == 0
        assert stats["mean_jct"] is None
        assert stats["jct_ci95"] is None

    def test_write_sweep_artifacts_names(self, tmp_path):
        aggregates = {"alpha": {"scenario": "alpha"}, "beta": {"scenario": "beta"}}
        paths = write_sweep_artifacts(aggregates, tmp_path)
        assert sorted(p.name for p in paths) == ["SWEEP_alpha.json", "SWEEP_beta.json"]
