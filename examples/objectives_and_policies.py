#!/usr/bin/env python3
"""Different objectives produce qualitatively different learned policies (Fig. 13).

Trains three small Decima agents: one minimising average JCT with costly
executor movement, one with free executor movement, and one minimising the
makespan of the batch, then prints the resulting average JCT and makespan for
each — the trade-off the paper's Figure 13 visualises.

Run:  python examples/objectives_and_policies.py
"""

from repro.experiments import figure13_objectives, format_scalar_table


def main(num_jobs: int = 8, num_executors: int = 16, train_iterations: int = 5) -> None:
    print("Training three Decima agents (avg JCT / free executor motion / makespan)...\n")
    outputs = figure13_objectives(
        num_jobs=num_jobs, num_executors=num_executors, train_iterations=train_iterations
    )
    jcts = {name: data["average_jct"] for name, data in outputs.items()}
    makespans = {name: data["makespan"] for name, data in outputs.items()}
    print(format_scalar_table("Average JCT by training objective", jcts))
    print()
    print(format_scalar_table("Makespan by training objective", makespans))
    print()
    print("Expected shape (paper Fig. 13): the makespan-trained policy has the lowest")
    print("makespan but a higher average JCT; the free-motion environment lowers JCT.")


if __name__ == "__main__":
    main()
