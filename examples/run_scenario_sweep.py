#!/usr/bin/env python3
"""Run the scenario-matrix evaluation sweep from the command line.

Evaluates every requested scheduler on every registered scenario over several
seeds, fans the cells out across a worker pool, and writes one
``SWEEP_<scenario>.json`` artifact per scenario (mean/p95 JCT with bootstrap
confidence intervals).  The aggregates are byte-identical regardless of the
worker count.

Examples:

    # every scenario, the two standard heuristics, 3 seeds, 4 workers
    python examples/run_scenario_sweep.py --scenarios all \
        --schedulers fifo,fair --seeds 3 --workers 4

    # tiny CI smoke tier: all scenarios against FIFO, weighted fair and a
    # randomly initialized Decima agent
    python examples/run_scenario_sweep.py --scenarios all \
        --schedulers fifo,weighted_fair,decima --seeds 2 --workers 2 \
        --num-jobs 3 --num-executors 8 --out sweep-artifacts

    # list the registry
    python examples/run_scenario_sweep.py --list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import run_sweep, scenario_registry, write_sweep_artifacts
from repro.schedulers import scheduler_names


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="Scenario-matrix evaluation sweep (scenario x scheduler x seed)."
    )
    parser.add_argument(
        "--scenarios",
        default="all",
        help="comma-separated scenario names, or 'all' (default)",
    )
    parser.add_argument(
        "--schedulers",
        default="fifo,fair",
        # scheduler_names() is read live so register_scheduler extensions show.
        help=f"comma-separated scheduler names (known: {', '.join(scheduler_names())})",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="number of seeds per cell (0..N-1)"
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (1 = in-process)"
    )
    parser.add_argument(
        "--out", default=".", help="directory for the SWEEP_<scenario>.json artifacts"
    )
    parser.add_argument(
        "--num-jobs", type=int, default=None, help="override every scenario's job count"
    )
    parser.add_argument(
        "--num-executors",
        type=int,
        default=None,
        help="override every scenario's cluster size",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    return parser.parse_args(argv)


def _format_cell(value, width: int = 10) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:.1f}".rjust(width)


def main(argv=None) -> int:
    args = parse_args(argv)
    registry = scenario_registry(
        num_jobs=args.num_jobs, num_executors=args.num_executors
    )
    if args.list:
        width = max(len(name) for name in registry)
        for name, spec in registry.items():
            print(f"{name.ljust(width)}  {spec.description}")
        return 0

    if args.scenarios.strip().lower() == "all":
        scenarios = list(registry)
    else:
        scenarios = [name.strip() for name in args.scenarios.split(",") if name.strip()]
    schedulers = [name.strip() for name in args.schedulers.split(",") if name.strip()]
    seeds = list(range(args.seeds))

    print(
        f"sweep: {len(scenarios)} scenarios x {len(schedulers)} schedulers x "
        f"{len(seeds)} seeds = {len(scenarios) * len(schedulers) * len(seeds)} cells "
        f"({args.workers} workers)"
    )
    start = time.perf_counter()
    aggregates = run_sweep(
        scenarios,
        schedulers,
        seeds,
        num_workers=args.workers,
        num_jobs=args.num_jobs,
        num_executors=args.num_executors,
    )
    elapsed = time.perf_counter() - start
    paths = write_sweep_artifacts(aggregates, args.out)

    name_width = max(len(name) for name in schedulers)
    for scenario, aggregate in aggregates.items():
        print(f"\n{scenario}: {aggregate['description']}")
        header = f"  {'scheduler'.ljust(name_width)} {'mean JCT'.rjust(10)} {'ci95'.rjust(21)} {'p95 JCT'.rjust(10)} {'done'.rjust(5)}"
        print(header)
        for scheduler in schedulers:
            stats = aggregate["schedulers"][scheduler]
            ci = stats["jct_ci95"]
            ci_text = f"[{ci[0]:.1f}, {ci[1]:.1f}]".rjust(21) if ci else "-".rjust(21)
            done = f"{stats['total_finished']}/{stats['total_finished'] + stats['total_unfinished']}"
            print(
                f"  {scheduler.ljust(name_width)} {_format_cell(stats['mean_jct'])} "
                f"{ci_text} {_format_cell(stats['p95_jct'])} {done.rjust(5)}"
            )
    print(f"\nwrote {len(paths)} artifacts to {args.out} in {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
