#!/usr/bin/env python
"""Record (or verify) the golden episode traces under ``tests/golden/``.

A golden trace is the event-sourced recording of one seeded episode of a
registry scenario (see ``docs/TESTING.md``).  CI replays every checked-in
trace each run and fails on any drift, so the goldens are the repo's
regression backstop: regenerate them ONLY when a behaviour change is
intentional, and say so in the commit message.

Usage::

    # regenerate all goldens in place (after an intentional behaviour change)
    python examples/record_golden_traces.py

    # drift check (what CI runs): re-record and compare digests, write a report
    python examples/record_golden_traces.py --verify --report GOLDEN_replay.json

The scheduler defaults to ``fifo``: a pure-python heuristic whose decision
stream contains no floating-point tie-breaking, so the traces are stable
across platforms and BLAS builds.  ``--scheduler decima`` works too (useful
locally) but is not what the checked-in goldens use.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.scenarios import scenario_names  # noqa: E402
from repro.verify import (  # noqa: E402
    ReplayEngine,
    read_trace,
    record_scenario_trace,
    write_trace,
)

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "tests" / "golden"


def trace_path(out_dir: Path, scenario: str) -> Path:
    return out_dir / f"{scenario}.trace.jsonl"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="golden trace directory (default: tests/golden)")
    parser.add_argument("--scenarios", default="all",
                        help="comma-separated scenario names, or 'all'")
    parser.add_argument("--scheduler", default="fifo",
                        help="scheduler to record (default: fifo)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--num-jobs", type=int, default=None,
                        help="override every scenario's job count "
                             "(default: the registry's own sizes)")
    parser.add_argument("--num-executors", type=int, default=None,
                        help="override every scenario's executor count "
                             "(default: the registry's own sizes)")
    parser.add_argument("--verify", action="store_true",
                        help="compare freshly recorded traces against the "
                             "checked-in files instead of overwriting them")
    parser.add_argument("--report", type=Path, default=None,
                        help="write a JSON report of the run (with --verify)")
    args = parser.parse_args()

    names = (
        list(scenario_names())
        if args.scenarios == "all"
        else [name.strip() for name in args.scenarios.split(",") if name.strip()]
    )
    report = {"scheduler": args.scheduler, "seed": args.seed, "scenarios": {}}
    drifted = []
    for name in names:
        trace = record_scenario_trace(
            name,
            scheduler=args.scheduler,
            seed=args.seed,
            num_jobs=args.num_jobs,
            num_executors=args.num_executors,
        )
        path = trace_path(args.out, name)
        entry = {
            "digest": trace.digest,
            "num_decisions": trace.num_decisions,
            "num_events": len(trace.events),
        }
        if args.verify:
            if not path.exists():
                entry["status"] = "missing"
                drifted.append(name)
            else:
                recorded = read_trace(path)
                if recorded.digest != trace.digest:
                    entry["status"] = "drift"
                    entry["recorded_digest"] = recorded.digest
                    divergence = ReplayEngine("rerun").replay(recorded).divergence
                    if divergence is not None:
                        entry["first_divergence"] = divergence.describe()
                    drifted.append(name)
                else:
                    entry["status"] = "ok"
            print(f"[{entry['status'].upper():5s}] {name}: {entry['num_decisions']} "
                  f"decisions, digest {trace.digest[:16]}")
        else:
            write_trace(trace, path)
            entry["status"] = "written"
            print(f"[WROTE] {path} ({entry['num_decisions']} decisions, "
                  f"{path.stat().st_size} bytes)")
        report["scenarios"][name] = entry
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.report}")
    if drifted:
        print(f"GOLDEN DRIFT in {len(drifted)} scenario(s): {', '.join(drifted)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
