#!/usr/bin/env python3
"""Serve a (trained) Decima policy to many concurrent cluster sessions.

Starts the long-lived policy server of :mod:`repro.service`: clients open
sessions over a newline-delimited-JSON TCP protocol and stream observation
snapshots; the server answers each with a scheduling action, batching the GNN
inference across whatever sessions have a request pending.  A per-request SLO
(``--slo-ms``) guards the policy path — when it breaches, a circuit-breaker
temporarily routes decisions to the per-session fallback heuristic.

The whole deployment is described by one declarative
:class:`~repro.service.ServingConfig` and constructed by
:func:`~repro.service.build_server`: with ``--shards N`` (N > 1) that is a
**sharded fleet** (N shard processes behind a session-hashing router with an
admission limit and a control plane on a second port), otherwise a single
threaded or asyncio server.

With ``--online`` the server keeps *learning while it serves*: every decision
is recorded into a replay buffer, a background trainer runs REINFORCE updates
over replayed experience, each result is persisted as the next version in a
:class:`~repro.core.checkpoints.CheckpointStore` (``--store-dir``) and
hot-swapped into the serving processes under a monotonic policy version — with
an SLO guard that automatically rolls back to the last good checkpoint if a
freshly installed version regresses.

Run:  python examples/run_policy_server.py --run-dir runs/tpch     # latest.json
      python examples/run_policy_server.py --checkpoint model.npz  # explicit file
      python examples/run_policy_server.py --executors 20          # untrained net
      python examples/run_policy_server.py --shards 4 --max-sessions 64  # fleet
      python examples/run_policy_server.py --online --store-dir runs/online

Then drive traffic at it with examples/run_policy_loadgen.py.
"""

import argparse
import tempfile
import time

from repro.core import CheckpointStore, DecimaAgent, DecimaConfig, load_agent, load_latest
from repro.learning import OnlineLearningConfig, OnlineLearningManager, OnlineTrainerConfig
from repro.obs import configure_logging, summarize_snapshot
from repro.schedulers import scheduler_names
from repro.service import ControlClient, ServingConfig, build_server


def _sample(snapshot: dict, name: str):
    samples = (snapshot.get(name) or {}).get("samples") or []
    return samples[0].get("value") if samples else None


def build_serving_agent(args) -> DecimaAgent:
    if args.run_dir:
        agent = load_latest(args.run_dir)
        print(f"Loaded latest checkpoint from {args.run_dir} "
              f"({agent.num_parameters()} parameters)")
        return agent
    if args.checkpoint:
        agent = load_agent(args.checkpoint)
        print(f"Loaded {args.checkpoint} ({agent.num_parameters()} parameters)")
        return agent
    print(f"No checkpoint given — serving an untrained policy "
          f"({args.executors} executors)")
    return DecimaAgent(total_executors=args.executors, config=DecimaConfig(seed=0))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--run-dir", help="training run directory (reads latest.json)")
    source.add_argument("--checkpoint", help="explicit .npz checkpoint path")
    parser.add_argument("--executors", type=int, default=10,
                        help="cluster size for an untrained agent (default 10)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = pick a free one and print it)")
    parser.add_argument("--fallback", default="fifo", choices=scheduler_names(),
                        help="default SLO-fallback heuristic for new sessions")
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="per-decision latency SLO; unset disables the breaker")
    parser.add_argument("--serial", action="store_true",
                        help="disable cross-session batching (serial reference path)")
    parser.add_argument("--sample", action="store_true",
                        help="sample actions instead of greedy arg-max")
    parser.add_argument("--shards", type=int, default=1,
                        help="shard processes; >1 serves a router-fronted fleet")
    parser.add_argument("--control-port", type=int, default=0,
                        help="control-plane port for the fleet (0 = pick one)")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="fleet admission limit (concurrent sessions)")
    parser.add_argument("--asyncio", action="store_true",
                        help="use the asyncio transport for a single server")
    parser.add_argument("--online", action="store_true",
                        help="learn online: background REINFORCE over served "
                             "decisions, checkpointed + hot-swapped with "
                             "automatic SLO rollback")
    parser.add_argument("--store-dir", default=None,
                        help="CheckpointStore directory for --online versions "
                             "(default: a temporary directory)")
    parser.add_argument("--learning-rate", type=float, default=1e-3,
                        help="online REINFORCE learning rate (--online)")
    parser.add_argument("--update-interval", type=float, default=2.0,
                        help="seconds between online update ticks (--online)")
    parser.add_argument("--stats-interval", type=float, default=30.0,
                        help="seconds between live ops lines (one metrics-"
                             "registry snapshot per server/shard: policy "
                             "version, decisions, delta/full feature "
                             "refreshes, per-stage timings, decision "
                             "latency); 0 disables")
    parser.add_argument("--log-level", default="info",
                        help="structured JSON log level on stderr "
                             "(debug/info/warning/error; default info)")
    args = parser.parse_args()
    configure_logging(level=args.log_level.upper())

    agent = build_serving_agent(args)
    config = ServingConfig(
        transport="asyncio" if args.asyncio else "threaded",
        num_shards=args.shards,
        host=args.host,
        port=args.port,
        control_port=args.control_port,
        max_sessions=args.max_sessions,
        fallback=args.fallback,
        slo_ms=args.slo_ms,
        batched=not args.serial,
        greedy=not args.sample,
        collect_experience=args.online,
    )
    server = build_server(config, agent=agent)
    host, port = server.start()
    mode = "serial" if args.serial else "batched"
    slo = f"{args.slo_ms:.0f} ms SLO -> {args.fallback}" if args.slo_ms else "no SLO"
    if args.shards > 1:
        control_host, control_port = server.control_address
        limit = args.max_sessions if args.max_sessions is not None else "unlimited"
        print(f"Serving fleet: {args.shards} shards behind {host}:{port} "
              f"({mode} inference, {slo}, admission limit {limit})")
        print(f"Control plane (health/stats/reconfigure) on "
              f"{control_host}:{control_port}")
    else:
        transport = "asyncio" if args.asyncio else "threaded"
        print(f"Policy server listening on {host}:{port} "
              f"({transport} transport, {mode} inference, {slo})")

    manager = None
    store_tmp = None
    if args.online:
        if args.store_dir is None:
            store_tmp = tempfile.TemporaryDirectory(prefix="decima-online-")
            store_dir = store_tmp.name
        else:
            store_dir = args.store_dir
        manager = OnlineLearningManager(
            server,
            CheckpointStore(store_dir),
            OnlineLearningConfig(
                trainer=OnlineTrainerConfig(learning_rate=args.learning_rate),
            ),
        )
        manager.start(interval_seconds=args.update_interval)
        print(f"Online learning on (lr={args.learning_rate:g}, "
              f"checkpoint store: {store_dir})")
    print("Press Ctrl-C to stop.")

    def print_stats() -> None:
        """Live ops lines straight from the metrics registries."""
        if args.shards > 1:
            with ControlClient(*server.control_address) as control:
                metrics = control.metrics()
                stats = control.stats()
            router = metrics.get("router", {})
            sessions = _sample(router, "router_active_sessions")
            healthy = _sample(router, "router_healthy_shards")
            rejected = _sample(router, "router_sessions_rejected_total")
            print(f"[router] sessions={sessions:.0f} healthy_shards={healthy:.0f} "
                  f"rejected={rejected:.0f}"
                  if sessions is not None else "[router] no metrics")
            for shard in metrics.get("shards", []):
                print(f"[shard {shard['index']}] "
                      f"{summarize_snapshot(shard['metrics'])}")
            learning = stats.get("learning")
            if learning:
                print(f"[learning] v{learning['policy_version']} "
                      f"updates={learning['num_updates_applied']} "
                      f"rollbacks={learning['num_rollbacks']}")
        else:
            print(f"[stats] {summarize_snapshot(server.metrics.snapshot())}")
            if manager is not None:
                info = manager.learning_info()
                print(f"[learning] v{info['policy_version']} "
                      f"updates={info['num_updates_applied']} "
                      f"rollbacks={info['num_rollbacks']}")

    try:
        next_stats = time.monotonic() + args.stats_interval
        while True:
            time.sleep(1.0)
            if args.stats_interval > 0 and time.monotonic() >= next_stats:
                print_stats()
                next_stats = time.monotonic() + args.stats_interval
    except KeyboardInterrupt:
        print("\nStopping...")
        if args.stats_interval > 0:
            print_stats()
    finally:
        if manager is not None:
            manager.stop()
        server.stop()
        if store_tmp is not None:
            store_tmp.cleanup()


if __name__ == "__main__":
    main()
