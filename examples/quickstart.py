#!/usr/bin/env python3
"""Quickstart: schedule a batch of TPC-H-like jobs with heuristics and Decima.

This mirrors the illustrative example of §2.3 (Figure 3): ten random TPC-H
jobs on a cluster with 50 task slots, scheduled by FIFO, SJF-CP, fair sharing
and a (briefly trained) Decima agent.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DecimaAgent
from repro.experiments import (
    compare_schedulers,
    format_scalar_table,
    improvement_over,
    tpch_batch_factory,
    train_decima_agent,
)
from repro.schedulers import FairScheduler, FIFOScheduler, SJFCPScheduler
from repro.simulator import SimulatorConfig
from repro.workloads import batched_arrivals, sample_tpch_jobs


def main(num_jobs: int = 10, num_executors: int = 50, train_iterations: int = 5) -> None:
    rng = np.random.default_rng(0)
    jobs = batched_arrivals(sample_tpch_jobs(num_jobs, rng))
    config = SimulatorConfig(num_executors=num_executors, seed=0)

    print(f"Scheduling {num_jobs} TPC-H jobs on {num_executors} executors")
    print(f"Total work: {sum(job.total_work for job in jobs):.0f} task-seconds\n")

    print(f"Training Decima for {train_iterations} iterations (use more for better policies)...")
    decima, _ = train_decima_agent(
        config,
        tpch_batch_factory(num_jobs),
        num_iterations=train_iterations,
        episodes_per_iteration=2,
        seed=0,
    )

    schedulers = {
        "fifo": FIFOScheduler(),
        "sjf_cp": SJFCPScheduler(),
        "fair": FairScheduler(),
        "decima": decima,
    }
    results = compare_schedulers(schedulers, jobs, config, seed=0)
    jcts = {name: result.average_jct for name, result in results.items()}
    print()
    print(format_scalar_table("Average job completion time (Figure 3)", jcts))
    print()
    print(f"Decima vs FIFO improvement: {improvement_over(jcts, 'decima', 'fifo'):.0%}")
    print(f"Decima vs fair improvement: {improvement_over(jcts, 'decima', 'fair'):.0%}")


if __name__ == "__main__":
    main()
