#!/usr/bin/env python3
"""Train Decima on continuous TPC-H job arrivals and compare to tuned heuristics.

This is a scaled-down version of the §7.2 continuous-arrival experiment
(Figure 9b): jobs arrive as a Poisson process, Decima trains with curriculum
learning and input-dependent baselines, and the learned policy is compared to
the optimally tuned weighted-fair heuristic.  The trained model is saved to an
``.npz`` checkpoint.

Run:  python examples/train_decima_tpch.py [--iterations N]
"""

import argparse

import numpy as np

from repro.core import CheckpointStore, TrainingConfig, save_agent
from repro.experiments import (
    format_scalar_table,
    run_scheduler_on_jobs,
    tpch_poisson_factory,
    train_decima_agent,
    tune_weighted_fair,
)
from repro.schedulers import FairScheduler
from repro.simulator import SimulatorConfig
from repro.workloads import poisson_arrivals, sample_tpch_jobs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=15, help="training iterations")
    parser.add_argument("--num-jobs", type=int, default=12, help="jobs per arrival sequence")
    parser.add_argument("--executors", type=int, default=25, help="cluster size")
    parser.add_argument("--interarrival", type=float, default=45.0, help="mean interarrival (s)")
    parser.add_argument("--checkpoint", default="decima_tpch.npz", help="output model path")
    parser.add_argument("--store-dir", default=None,
                        help="also save the model as the next version of a "
                             "CheckpointStore (servable with "
                             "run_policy_server.py --store-dir)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="rollout worker processes, >= 1 (1 = serial; the paper uses 16)",
    )
    args = parser.parse_args()

    config = SimulatorConfig(num_executors=args.executors, seed=0)
    factory = tpch_poisson_factory(args.num_jobs, args.interarrival)

    print(f"Training Decima for {args.iterations} iterations "
          f"({args.num_jobs} jobs/sequence, {args.executors} executors, "
          f"{args.workers} rollout worker{'s' if args.workers != 1 else ''})...")
    agent, history = train_decima_agent(
        config,
        factory,
        num_iterations=args.iterations,
        episodes_per_iteration=3,
        training_config=TrainingConfig(seed=0, initial_episode_time=2000.0),
        seed=0,
        num_workers=args.workers,
    )
    rewards = history.rewards()
    print(f"Mean episode reward: first iteration {rewards[0]:.3f}, last {rewards[-1]:.3f}")

    path = save_agent(agent, args.checkpoint)
    print(f"Saved trained model to {path} ({agent.num_parameters()} parameters)")
    if args.store_dir:
        info = CheckpointStore(args.store_dir).save(agent)
        print(f"Saved checkpoint version {info.version} to {info.path}")

    # Evaluate on an unseen arrival sequence.
    rng = np.random.default_rng(1234)
    test_jobs = poisson_arrivals(
        sample_tpch_jobs(args.num_jobs, rng), args.interarrival, rng
    )
    tuned, tuned_jct, _ = tune_weighted_fair(
        test_jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5)
    )
    results = {
        "fair": run_scheduler_on_jobs(FairScheduler(), test_jobs, config=config).average_jct,
        "opt_weighted_fair": tuned_jct,
        "decima": run_scheduler_on_jobs(agent, test_jobs, config=config).average_jct,
    }
    print()
    print(format_scalar_table("Average JCT on an unseen arrival sequence (Figure 9b)", results))


if __name__ == "__main__":
    main()
