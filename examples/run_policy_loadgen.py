#!/usr/bin/env python3
"""Drive synthetic multi-session load at a policy server and report throughput.

Each session is a simulated cluster running full scheduling episodes with
every decision served remotely; sessions run concurrently until the fleet has
made the requested number of decisions.  The summary (decisions/sec, decision
sources, p50/p95/p99 latency) prints to stdout and can be written as a JSON
artifact with ``--out``.

Run against a server you started yourself:

    python examples/run_policy_server.py --port 5555 &
    python examples/run_policy_loadgen.py --connect 127.0.0.1:5555

or let the load generator self-host one (the CI smoke path):

    python examples/run_policy_loadgen.py --serve --sessions 4 --decisions 200

With ``--shards N`` the self-hosted target is a full sharded fleet (N shard
processes behind the session-hashing router); the summary then also carries a
control-plane snapshot (per-shard health and broker/SLO stats).  Against an
externally-started fleet, pass its control address via ``--control`` to get
the same snapshot.

With ``--online`` (self-host only) the target learns while serving: an
:class:`~repro.learning.OnlineLearningManager` drains per-decision experience,
runs background REINFORCE updates and hot-swaps each checkpointed result into
the serving processes.  The summary then carries a ``learning`` section
(policy version, updates applied, rollbacks, buffer occupancy) — the CI
online smoke asserts at least one update landed with zero dropped sessions.
"""

import argparse
import json
import sys
import tempfile
import time

from repro.core import CheckpointStore, DecimaAgent, DecimaConfig
from repro.learning import (
    OnlineLearningConfig,
    OnlineLearningManager,
    OnlineTrainerConfig,
)
from repro.obs import configure_logging, summarize_snapshot
from repro.service import (
    ControlClient,
    PolicyClient,
    ServingConfig,
    build_server,
    run_load,
)


def parse_address(text: str, flag: str, parser) -> tuple:
    host, _, port = text.partition(":")
    if not port:
        parser.error(f"{flag} needs HOST:PORT")
    return host, int(port)


def watch_fleet(address: tuple, interval: float) -> None:
    """Live ops surface: scrape a running fleet's control plane forever.

    One line per shard per tick, straight from the shard metric registries
    (policy version, decision/fallback counts, feature-refresh mix, stage
    timings, decision latency) plus the online-learning status when a
    manager publishes it.  Ctrl-C stops.
    """
    print(f"Watching fleet control plane at {address[0]}:{address[1]} "
          f"every {interval:g}s (Ctrl-C to stop)")
    with ControlClient(*address) as control:
        while True:
            reply = control.metrics()
            for shard in reply.get("shards", []):
                print(f"[shard {shard['index']}] "
                      f"{summarize_snapshot(shard['metrics'])}")
            learning = control.stats().get("learning")
            if learning:
                print(f"[learning] v{learning['policy_version']} "
                      f"updates={learning['num_updates_applied']} "
                      f"rollbacks={learning['num_rollbacks']}")
            time.sleep(interval)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    target = parser.add_mutually_exclusive_group()
    target.add_argument("--connect", metavar="HOST:PORT",
                        help="address of a running policy server")
    target.add_argument("--serve", action="store_true",
                        help="self-host a server in-process for the duration")
    target.add_argument("--watch", metavar="HOST:PORT",
                        help="drive no load; live-print a running fleet's "
                             "per-shard metrics from its control plane")
    parser.add_argument("--watch-interval", type=float, default=2.0,
                        help="seconds between --watch scrapes (default 2)")
    parser.add_argument("--trace-every", type=int, default=None,
                        help="end-to-end trace every Nth decision per episode "
                             "(trace ids land in the summary; against a fleet "
                             "the first one is reconstructed and printed)")
    parser.add_argument("--sessions", type=int, default=4,
                        help="concurrent cluster sessions (default 4)")
    parser.add_argument("--decisions", type=int, default=200,
                        help="minimum fleet-wide decisions to drive (default 200)")
    parser.add_argument("--jobs", type=int, default=4, help="jobs per episode")
    parser.add_argument("--executors", type=int, default=10,
                        help="executors per session cluster")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="SLO for the self-hosted server (--serve only)")
    parser.add_argument("--serial", action="store_true",
                        help="self-hosted server answers serially (--serve only)")
    parser.add_argument("--shards", type=int, default=1,
                        help="self-host a fleet with this many shard processes")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="admission limit for the self-hosted fleet")
    parser.add_argument("--online", action="store_true",
                        help="self-hosted target learns online while serving "
                             "(background REINFORCE + checkpoint hot-swap)")
    parser.add_argument("--learning-rate", type=float, default=1e-3,
                        help="online learning rate (--online)")
    parser.add_argument("--update-interval", type=float, default=0.5,
                        help="seconds between online update ticks (--online)")
    parser.add_argument("--control", metavar="HOST:PORT", default=None,
                        help="control-plane address of an external fleet "
                             "(snapshot health/stats into the summary)")
    parser.add_argument("--out", help="write the summary JSON to this path")
    args = parser.parse_args()

    configure_logging()
    if args.watch:
        try:
            watch_fleet(parse_address(args.watch, "--watch", parser),
                        args.watch_interval)
        except KeyboardInterrupt:
            pass
        return
    if not args.connect and not args.serve:
        args.serve = True  # sensible default: a self-contained run
    if args.online and not args.serve:
        parser.error("--online requires the self-hosted target (--serve)")

    server = None
    manager = None
    store_tmp = None
    control_address = None
    if args.control:
        control_address = parse_address(args.control, "--control", parser)
    if args.serve:
        agent = DecimaAgent(
            total_executors=args.executors, config=DecimaConfig(seed=args.seed)
        )
        config = ServingConfig(
            num_shards=args.shards,
            max_sessions=args.max_sessions,
            slo_ms=args.slo_ms,
            batched=not args.serial,
            collect_experience=args.online,
        )
        server = build_server(config, agent=agent)
        host, port = server.start()
        if args.shards > 1:
            control_address = server.control_address
            print(f"Self-hosted serving fleet ({args.shards} shards) on "
                  f"{host}:{port}; control plane on "
                  f"{control_address[0]}:{control_address[1]}")
        else:
            print(f"Self-hosted policy server on {host}:{port}")
        if args.online:
            store_tmp = tempfile.TemporaryDirectory(prefix="decima-online-")
            manager = OnlineLearningManager(
                server,
                CheckpointStore(store_tmp.name),
                OnlineLearningConfig(
                    trainer=OnlineTrainerConfig(learning_rate=args.learning_rate),
                ),
            )
            manager.start(interval_seconds=args.update_interval)
            print(f"Online learning on (lr={args.learning_rate:g})")
    else:
        host, port = parse_address(args.connect, "--connect", parser)

    try:
        summary = run_load(
            host,
            port,
            num_sessions=args.sessions,
            num_jobs=args.jobs,
            num_executors=args.executors,
            min_total_decisions=args.decisions,
            seed=args.seed,
            trace_every=args.trace_every,
        )
        if manager is not None:
            # One final synchronous tick so short runs still get an update in
            # before the snapshot, then stop the background thread.
            manager.maybe_update()
            manager.stop()
            summary["learning"] = manager.learning_info()
        if control_address is not None:
            # Snapshot the fleet's control plane while the shards are still
            # up: per-shard liveness, placement, broker/SLO accounting and
            # every registry (router + shards) in one scrape.
            with ControlClient(*control_address) as control:
                summary["control"] = {
                    "health": control.health(),
                    "stats": control.stats(),
                }
                summary["metrics"] = control.metrics()
                trace_ids = summary.get("trace_ids", [])
                if trace_ids:
                    # The acceptance demo: one traced decision, rebuilt
                    # end-to-end (client -> router -> shard -> stages) from
                    # a single control-plane query.
                    summary["trace"] = control.trace(trace_ids[0])
        else:
            # Single-server target: scrape its registry over the data plane.
            try:
                with PolicyClient(host, port) as scrape:
                    summary["metrics"] = scrape.metrics()
                    trace_ids = summary.get("trace_ids", [])
                    if trace_ids:
                        summary["trace"] = scrape.trace(trace_ids[0])
            except Exception:  # noqa: BLE001 - a pre-v3 server has no scrape
                pass
    finally:
        if manager is not None:
            manager.stop()
        if server is not None:
            server.stop()
        if store_tmp is not None:
            store_tmp.cleanup()

    latency = summary["latency_ms"]
    print(f"\n{summary['decisions']} decisions across {summary['num_sessions']} "
          f"sessions in {summary['elapsed_seconds']:.2f}s "
          f"= {summary['decisions_per_sec']:.1f} decisions/sec")
    print(f"sources: {summary['sources']}")
    print(f"latency ms: p50={latency['p50']:.2f} p95={latency['p95']:.2f} "
          f"p99={latency['p99']:.2f} (n={latency['count']})")
    if "learning" in summary:
        learning = summary["learning"]
        print(f"learning: policy v{learning['policy_version']}, "
              f"{learning['num_updates_applied']} updates applied, "
              f"{learning['num_rollbacks']} rollbacks, "
              f"buffer {learning['buffer']['num_episodes']} episodes")
    if "control" in summary:
        health = summary["control"]["health"]
        print(f"fleet health: {health['num_healthy']}/{len(health['shards'])} "
              f"shards healthy; per-shard decisions: "
              f"{[s.get('broker', {}).get('num_decisions') for s in summary['control']['stats']['shards']]}")
    metrics = summary.get("metrics")
    if metrics is not None:
        if "shards" in metrics:
            for shard in metrics["shards"]:
                print(f"[shard {shard['index']}] "
                      f"{summarize_snapshot(shard['metrics'])}")
        elif "metrics" in metrics:
            print(f"[metrics] {summarize_snapshot(metrics['metrics'])}")
    trace = summary.get("trace")
    if trace is not None and trace.get("spans"):
        chain = " -> ".join(
            f"{span.get('name')}({span.get('service', '?')}, "
            f"{span.get('duration_ms', 0.0):.2f}ms)"
            for span in trace["spans"]
        )
        print(f"trace {trace['trace_id']}: {chain}")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if summary["decisions"] < args.decisions:
        print("ERROR: fleet made fewer decisions than requested", file=sys.stderr)
        sys.exit(1)
    if args.online and summary["learning"]["num_updates_applied"] < 1:
        print("ERROR: online learning applied no updates", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
