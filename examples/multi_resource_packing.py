#!/usr/bin/env python3
"""Multi-resource packing on an industrial-style workload (§7.3, Figure 11).

The cluster has four discrete executor classes (1 CPU core, 0.25/0.5/0.75/1.0
memory); every stage carries a memory request.  The example compares Tetris,
Graphene*, the tuned weighted-fair heuristic and a multi-resource Decima agent
on an Alibaba-like job trace.

Run:  python examples/multi_resource_packing.py
"""

import numpy as np

from repro.core import DecimaConfig
from repro.experiments import (
    compare_schedulers,
    format_scalar_table,
    train_decima_agent,
    tune_weighted_fair,
)
from repro.schedulers import GrapheneScheduler, TetrisScheduler
from repro.simulator import multi_resource_config
from repro.workloads import sample_alibaba_jobs


def main(num_jobs: int = 12, total_executors: int = 32, train_iterations: int = 5) -> None:
    rng = np.random.default_rng(7)
    jobs = sample_alibaba_jobs(num_jobs, rng, mean_interarrival=40.0)
    config = multi_resource_config(total_executors=total_executors, seed=0)

    stages = sum(job.num_nodes for job in jobs)
    print(f"Industrial-style trace: {num_jobs} jobs, {stages} stages, "
          f"{total_executors} executors in 4 memory classes\n")

    print(f"Training a multi-resource Decima agent ({train_iterations} iterations)...")
    decima, _ = train_decima_agent(
        config,
        lambda r: sample_alibaba_jobs(num_jobs, r, mean_interarrival=40.0),
        num_iterations=train_iterations,
        episodes_per_iteration=2,
        agent_config=DecimaConfig(multi_resource=True, seed=0),
        seed=0,
    )
    tuned, _, _ = tune_weighted_fair(jobs, config=config, alphas=np.arange(-2.0, 2.01, 0.5))

    schedulers = {
        "opt_weighted_fair": tuned,
        "tetris": TetrisScheduler(),
        "graphene*": GrapheneScheduler(),
        "decima": decima,
    }
    results = compare_schedulers(schedulers, jobs, config, seed=0)
    jcts = {name: result.average_jct for name, result in results.items()}
    print()
    print(format_scalar_table("Average JCT with multi-dimensional resources (Figure 11a)", jcts))


if __name__ == "__main__":
    main()
